//! The per-connection state machine.
//!
//! One handler thread drives one connection at a time: it reads into the
//! connection's [`RequestDecoder`] (pooled receive buffers, zero-copy
//! bodies), serves every complete request through the frontend, and writes
//! each response with a vectored [`Rope::write_to`] — so a function's output
//! buffer travels from context export to the socket by reference.
//!
//! Protocol behaviour:
//!
//! * **Keep-alive and pipelining.** HTTP/1.1 connections persist by
//!   default; all requests already buffered are served in order before the
//!   next read. `Connection: close` (or HTTP/1.0 without
//!   `Connection: keep-alive`) closes after the response.
//! * **Malformed requests** are answered with a structured JSON error body
//!   (stable `code`: `malformed_request`, `headers_too_large` for `431`,
//!   `body_too_large` for `413`) and the connection is closed — never a
//!   silent drop.
//! * **Slow clients** hit the per-connection read deadline: a stall
//!   mid-request is answered with `408` and closed; an idle keep-alive
//!   connection is closed silently.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;

use dandelion_common::{JsonValue, Rope};
use dandelion_core::Frontend;
use dandelion_http::{
    rejection_code, rejection_status, HttpParseError, HttpRequest, HttpResponse, RequestDecoder,
    StatusCode, Version,
};

use crate::config::ServerConfig;
use crate::server::ServerStats;

/// Builds the JSON error body shared by every connection-level rejection.
fn error_body(code: &str, message: &str, retryable: bool) -> HttpResponse {
    let document = JsonValue::object([(
        "error",
        JsonValue::object([
            ("code", JsonValue::string(code)),
            ("message", JsonValue::string(message)),
            ("retryable", JsonValue::from(retryable)),
        ]),
    )]);
    HttpResponse::new(StatusCode::OK, document.to_json_string().into_bytes())
        .with_header("Content-Type", "application/json")
}

/// The response for a request that failed parsing: `400`, `413` or `431`
/// with a stable machine-readable code.
pub fn rejection_response(error: &HttpParseError) -> HttpResponse {
    let mut response = error_body(rejection_code(error), &error.to_string(), false);
    response.status = rejection_status(error);
    response
}

/// The `503` answer for a connection refused by admission control.
pub fn overloaded_response(max_connections: usize) -> HttpResponse {
    let mut response = error_body(
        "overloaded",
        &format!("connection limit of {max_connections} reached"),
        true,
    );
    response.status = StatusCode::SERVICE_UNAVAILABLE;
    response
}

/// The `408` answer for a client that stalled mid-request past the read
/// deadline.
pub fn timeout_response() -> HttpResponse {
    let mut response = error_body(
        "read_timeout",
        "request was not received within the read deadline",
        true,
    );
    response.status = StatusCode::REQUEST_TIMEOUT;
    response
}

/// Finalizes a response for delivery: stamps the `Connection` header and
/// serializes to a [`Rope`] so the body leaves by reference (the zero-copy
/// invariant the integration tests assert by `Arc` identity).
pub fn response_rope(mut response: HttpResponse, close: bool) -> Rope {
    response
        .headers
        .insert("Connection", if close { "close" } else { "keep-alive" });
    response.to_rope()
}

/// Whether the request asks for the connection to close after the response.
fn wants_close(request: &HttpRequest) -> bool {
    match request.headers.get("connection") {
        Some(value) if value.eq_ignore_ascii_case("close") => true,
        Some(value) => {
            request.version == Version::Http10 && !value.eq_ignore_ascii_case("keep-alive")
        }
        None => request.version == Version::Http10,
    }
}

/// Classifies a read error as the deadline firing (distinct from a hard
/// socket error); both `WouldBlock` and `TimedOut` appear depending on the
/// platform.
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes a response; delivery failures just close the connection (the
/// peer is gone — there is nobody to report to).
fn deliver(stream: &mut TcpStream, response: HttpResponse, close: bool) -> bool {
    let rope = response_rope(response, close);
    rope.write_to(stream).and_then(|()| stream.flush()).is_ok()
}

/// Serves one connection until it closes, errors, or the server drains.
pub(crate) fn handle_connection(
    mut stream: TcpStream,
    frontend: &Frontend,
    config: &ServerConfig,
    stats: &ServerStats,
    stopping: &std::sync::atomic::AtomicBool,
) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let mut decoder = RequestDecoder::new(config.limits);
    // The read deadline is per *request*, not per read: it starts when the
    // first byte of a request arrives, so a client dripping one byte per
    // read cannot reset it and pin the handler forever.
    let mut request_deadline: Option<std::time::Instant> = None;
    loop {
        match decoder.next_request() {
            Ok(Some(request)) => {
                request_deadline = None;
                let response = frontend.handle(&request);
                stats.requests.fetch_add(1, Ordering::Relaxed);
                // A draining server closes keep-alive connections at the
                // next response boundary instead of mid-exchange.
                let close = wants_close(&request) || stopping.load(Ordering::Acquire);
                if !deliver(&mut stream, response, close) || close {
                    return;
                }
            }
            Ok(None) => {
                if stopping.load(Ordering::Acquire) && decoder.buffered() == 0 {
                    return;
                }
                let now = std::time::Instant::now();
                let deadline = if decoder.buffered() == 0 {
                    // Between requests the clock restarts; the deadline is
                    // pinned once the next request starts arriving.
                    request_deadline = None;
                    now + config.read_timeout
                } else {
                    *request_deadline.get_or_insert(now + config.read_timeout)
                };
                let remaining = deadline.saturating_duration_since(now);
                if remaining.is_zero() {
                    if decoder.buffered() > 0 {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        deliver(&mut stream, timeout_response(), true);
                    }
                    return;
                }
                if stream.set_read_timeout(Some(remaining)).is_err() {
                    return;
                }
                match decoder.read_from(&mut stream, config.read_chunk_bytes) {
                    // Peer closed the connection.
                    Ok(0) => return,
                    Ok(_) => {}
                    Err(error) if is_timeout(&error) => {
                        if decoder.buffered() > 0 {
                            // Mid-request stall: tell the client before
                            // closing so it is never a silent drop.
                            stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            deliver(&mut stream, timeout_response(), true);
                        }
                        return;
                    }
                    Err(_) => return,
                }
            }
            Err(error) => {
                stats.rejected_requests.fetch_add(1, Ordering::Relaxed);
                deliver(&mut stream, rejection_response(&error), true);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_http::ParseLimits;

    #[test]
    fn rejection_responses_carry_stable_codes() {
        let malformed = rejection_response(&HttpParseError::MalformedStartLine("x".into()));
        assert_eq!(malformed.status, StatusCode::BAD_REQUEST);
        assert!(malformed.body_text().contains("\"malformed_request\""));
        let oversized_head = rejection_response(&HttpParseError::LimitExceeded("head size"));
        assert_eq!(oversized_head.status.0, 431);
        assert!(oversized_head.body_text().contains("\"headers_too_large\""));
        let oversized_body = rejection_response(&HttpParseError::LimitExceeded("body size"));
        assert_eq!(oversized_body.status.0, 413);
        assert!(oversized_body.body_text().contains("\"body_too_large\""));
        assert_eq!(overloaded_response(7).status.0, 503);
        assert_eq!(timeout_response().status.0, 408);
    }

    #[test]
    fn connection_header_negotiation() {
        let http11 = HttpRequest::get("/x");
        assert!(!wants_close(&http11));
        let close = HttpRequest::get("/x").with_header("Connection", "Close");
        assert!(wants_close(&close));
        let mut http10 = HttpRequest::get("/x");
        http10.version = Version::Http10;
        assert!(wants_close(&http10));
        let mut http10_keep = HttpRequest::get("/x").with_header("Connection", "keep-alive");
        http10_keep.version = Version::Http10;
        assert!(!wants_close(&http10_keep));
    }

    #[test]
    fn response_rope_stamps_the_connection_header() {
        let rope = response_rope(HttpResponse::ok(b"x".to_vec()), true);
        let text = String::from_utf8(rope.to_vec()).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        let rope = response_rope(HttpResponse::ok(b"x".to_vec()), false);
        let text = String::from_utf8(rope.to_vec()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn decoder_limits_flow_into_rejections() {
        // An oversized declared body maps to 413 through the decoder path.
        let mut decoder = RequestDecoder::new(ParseLimits {
            max_head_bytes: 1024,
            max_body_bytes: 16,
        });
        decoder.feed(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
        let error = decoder.next_request().unwrap_err();
        assert_eq!(rejection_response(&error).status.0, 413);
    }
}
