//! The per-connection state machine.
//!
//! A connection no longer owns a thread: it is a small state machine inside
//! an event loop's slab, advanced whenever its socket signals readiness or
//! a completion message arrives for it. The machine reads into its
//! [`RequestDecoder`] (pooled receive buffers, zero-copy bodies), dispatches
//! every complete request through [`Frontend::begin`], and delivers each
//! response through a resumable [`RopeWriter`] — so a function's output
//! buffer still travels from context export to the socket by reference,
//! even when the kernel accepts the response in pieces.
//!
//! Protocol behaviour:
//!
//! * **Keep-alive and pipelining.** HTTP/1.1 connections persist by
//!   default; pipelined requests are dispatched in arrival order and their
//!   responses delivered in that same order, with synchronous invocations
//!   parking a *response slot* (not a thread) until the worker settles
//!   them. Reads pause once `max_pipelined` responses are queued and
//!   resume as the backlog drains. `Connection: close` (or HTTP/1.0
//!   without `Connection: keep-alive`) closes after the response.
//! * **Malformed requests** are answered with a structured JSON error body
//!   (stable `code`: `malformed_request`, `headers_too_large` for `431`,
//!   `body_too_large` for `413`) and the connection is closed — never a
//!   silent drop.
//! * **Rate-limited clients** (token bucket per peer IP) get `429` with the
//!   stable `rate_limited` code; the connection stays open.
//! * **Slow clients** hit the per-request read deadline: a stall
//!   mid-request is answered with `408` and closed; an idle keep-alive
//!   connection is closed silently and counted in `idle_closed`.

use std::collections::VecDeque;
use std::net::{IpAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dandelion_common::{failpoint, JsonValue, Rope, RopeWriter};
use dandelion_core::{sync_invoke_response, FrontendReply};
use dandelion_http::{
    rejection_code, rejection_status, HttpParseError, HttpRequest, HttpResponse, RequestDecoder,
    StatusCode, Version,
};

use crate::event_loop::{LoopMsg, LoopShared};
use crate::gateway::GatewayReply;
use crate::rate::RateLimit;
use crate::server::{AppKind, Shared};

/// Builds the JSON error body shared by every connection-level rejection.
fn error_body(code: &str, message: &str, retryable: bool) -> HttpResponse {
    let document = JsonValue::object([(
        "error",
        JsonValue::object([
            ("code", JsonValue::string(code)),
            ("message", JsonValue::string(message)),
            ("retryable", JsonValue::from(retryable)),
        ]),
    )]);
    HttpResponse::new(StatusCode::OK, document.to_json_string().into_bytes())
        .with_header("Content-Type", "application/json")
}

/// The response for a request that failed parsing: `400`, `413` or `431`
/// with a stable machine-readable code.
pub fn rejection_response(error: &HttpParseError) -> HttpResponse {
    let mut response = error_body(rejection_code(error), &error.to_string(), false);
    response.status = rejection_status(error);
    response
}

/// The `503` answer for a connection refused by admission control.
pub fn overloaded_response(max_connections: usize) -> HttpResponse {
    let mut response = error_body(
        "overloaded",
        &format!("connection limit of {max_connections} reached"),
        true,
    );
    response.status = StatusCode::SERVICE_UNAVAILABLE;
    response
}

/// The `408` answer for a client that stalled mid-request past the read
/// deadline.
pub fn timeout_response() -> HttpResponse {
    let mut response = error_body(
        "read_timeout",
        "request was not received within the read deadline",
        true,
    );
    response.status = StatusCode::REQUEST_TIMEOUT;
    response
}

/// The `429` answer for a client over its per-IP token bucket.
pub fn rate_limited_response(limit: RateLimit) -> HttpResponse {
    let mut response = error_body(
        "rate_limited",
        &format!(
            "client exceeded {} requests/second (burst {})",
            limit.requests_per_sec, limit.burst
        ),
        true,
    );
    response.status = StatusCode::TOO_MANY_REQUESTS;
    response
}

/// Finalizes a response for delivery: stamps the `Connection` header and
/// serializes to a [`Rope`] so the body leaves by reference (the zero-copy
/// invariant the integration tests assert by `Arc` identity).
pub fn response_rope(mut response: HttpResponse, close: bool) -> Rope {
    response
        .headers
        .insert("Connection", if close { "close" } else { "keep-alive" });
    response.to_rope()
}

/// Whether the request asks for the connection to close after the response.
fn wants_close(request: &HttpRequest) -> bool {
    match request.headers.get("connection") {
        Some(value) if value.eq_ignore_ascii_case("close") => true,
        Some(value) => {
            request.version == Version::Http10 && !value.eq_ignore_ascii_case("keep-alive")
        }
        None => request.version == Version::Http10,
    }
}

/// One queued response, in pipeline order.
enum Slot {
    /// The response is in hand, waiting its turn on the wire.
    Ready { response: HttpResponse, close: bool },
    /// A synchronous invocation is running on the worker; its completion
    /// callback fills this slot via a [`LoopMsg::Complete`].
    Waiting { close: bool },
}

/// What [`Conn::pump`] and friends tell the event loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Keep the connection; the edge-triggered registration needs no
    /// re-arm — the pump drained everything the kernel had.
    Keep,
    /// Close and release the connection now.
    Close,
}

/// The state of one multiplexed connection.
pub(crate) struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    /// The slab token completions use to find this connection again.
    token: u64,
    decoder: RequestDecoder,
    /// The response currently (partially) on the wire.
    writer: Option<RopeWriter>,
    /// Whether the in-flight response closes the connection once delivered.
    close_after_write: bool,
    /// Responses queued behind the writer, in request order.
    slots: VecDeque<Slot>,
    /// Sequence number of `slots.front()`.
    front_seq: u64,
    /// Sequence number the next dispatched request will get.
    next_seq: u64,
    /// No further requests are read or parsed (close requested, parse
    /// error, deadline fired, or server draining past this connection).
    stop_reading: bool,
    /// The socket may still hold unread bytes. Under edge-triggered epoll a
    /// readable event fires once per arrival, so readability must be
    /// remembered across pumps: backpressure (a full pipeline backlog) can
    /// suspend reading mid-drain, and the kernel will not repeat the edge
    /// when the backlog later clears. Set by a readable event, cleared only
    /// when a read actually returns `EWOULDBLOCK` or EOF.
    sock_readable: bool,
    /// Deadline for the partially received request to finish arriving;
    /// armed when its first byte lands, disarmed when it completes.
    request_deadline: Option<Instant>,
    /// When an idle keep-alive connection (nothing buffered, nothing
    /// queued) is closed silently.
    idle_deadline: Instant,
    /// Deadline for the in-flight response to make write progress; armed
    /// when the socket refuses bytes, pushed forward whenever the client
    /// drains some, disarmed when the response completes. A client that
    /// never reads is closed (counted in `write_timeouts`) instead of
    /// holding its buffers until drain.
    write_deadline: Option<Instant>,
    /// `RopeWriter::written` when the write deadline was last (re)armed;
    /// progress past it counts as the client still reading.
    write_progress_mark: usize,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, peer: IpAddr, token: u64, shared: &Shared) -> Conn {
        Conn {
            stream,
            peer,
            token,
            decoder: RequestDecoder::new(shared.config.limits),
            writer: None,
            close_after_write: false,
            slots: VecDeque::new(),
            front_seq: 0,
            next_seq: 0,
            stop_reading: false,
            sock_readable: false,
            request_deadline: None,
            idle_deadline: Instant::now() + shared.config.read_timeout,
            write_deadline: None,
            write_progress_mark: 0,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Nothing buffered, queued or in flight: safe to close silently.
    fn is_idle(&self) -> bool {
        self.writer.is_none() && self.slots.is_empty() && self.decoder.buffered() == 0
    }

    /// Advances the connection as far as readiness allows: parses buffered
    /// requests, reads while `readable` and the socket has bytes,
    /// dispatches through the frontend, and flushes queued responses.
    pub(crate) fn pump(
        &mut self,
        shared: &Shared,
        me: &Arc<LoopShared>,
        readable: bool,
    ) -> Verdict {
        if readable {
            self.sock_readable = true;
        }
        let stopping = shared.stopping.load(Ordering::Acquire);
        loop {
            let mut progressed = false;
            // Parse whatever is already buffered, bounded by the backlog.
            while !self.stop_reading && self.slots.len() < shared.config.max_pipelined {
                match self.decoder.next_request() {
                    Ok(Some(request)) => {
                        self.dispatch(request, shared, me);
                        progressed = true;
                    }
                    Ok(None) => break,
                    Err(error) => {
                        shared
                            .stats
                            .rejected_requests
                            .fetch_add(1, Ordering::Relaxed);
                        self.enqueue(rejection_response(&error), true);
                        progressed = true;
                        break;
                    }
                }
            }
            // Pull more bytes while the kernel has them for us. The sticky
            // `sock_readable` flag — not this pump's trigger — gates the
            // read: a completion-driven pump resumes a drain that an earlier
            // pump suspended for backpressure, and only an actual
            // `EWOULDBLOCK` (or EOF) declares the socket dry again.
            if self.sock_readable
                && !self.stop_reading
                && self.slots.len() < shared.config.max_pipelined
            {
                let mut read_chunk = shared.config.read_chunk_bytes;
                if failpoint::enabled() {
                    match failpoint::check("conn/read") {
                        // An injected read error behaves like the kernel's:
                        // the connection closes.
                        Some(failpoint::Fault::Error) => return Verdict::Close,
                        // Partial I/O: cap this pass's read so the decoder
                        // exercises its split-buffer resume paths.
                        Some(failpoint::Fault::Partial(cap)) => {
                            read_chunk = read_chunk.min(cap.max(1));
                        }
                        None => {}
                    }
                }
                match self.decoder.read_from(&mut self.stream, read_chunk) {
                    // Peer finished sending (close or half-close). Requests
                    // already received are still owed their responses — a
                    // "send, shutdown(WR), read replies" client must get
                    // them — so stop reading and let flush drain the queue;
                    // the final flush closes the connection.
                    Ok(0) => {
                        self.stop_reading = true;
                        self.sock_readable = false;
                        continue;
                    }
                    Ok(_) => {
                        continue;
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                        self.sock_readable = false;
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Verdict::Close,
                }
            }
            match self.flush(shared, stopping) {
                Flush::Close => return Verdict::Close,
                Flush::Progress => progressed = true,
                Flush::Blocked => {}
            }
            if !progressed {
                break;
            }
        }
        // Deadline bookkeeping: a partial request pins its deadline at the
        // first byte (a drip-feeding client cannot reset it); an empty
        // buffer restarts the idle clock. Bytes left unparsed because the
        // pipeline backlog is full are server-side backpressure, not a
        // client stall, so they must not arm (or sustain) the deadline.
        if self.slots.len() >= shared.config.max_pipelined {
            self.request_deadline = None;
        } else if self.decoder.buffered() > 0 {
            if self.request_deadline.is_none() {
                self.request_deadline = Some(Instant::now() + shared.config.read_timeout);
            }
        } else {
            self.request_deadline = None;
            self.idle_deadline = Instant::now() + shared.config.read_timeout;
        }
        if stopping && self.is_idle() {
            return Verdict::Close;
        }
        Verdict::Keep
    }

    /// Routes one parsed request: rate limit first, then the frontend.
    /// Synchronous invocations park a `Waiting` slot and hand their
    /// completion callback the loop's inbox.
    fn dispatch(&mut self, request: HttpRequest, shared: &Shared, me: &Arc<LoopShared>) {
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let close = wants_close(&request);
        if close {
            // Pipelined successors after an explicit close are ignored.
            self.stop_reading = true;
        }
        if let Some(limiter) = &shared.limiter {
            if !limiter.admit(self.peer) {
                shared.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                self.enqueue(rate_limited_response(limiter.limit()), close);
                return;
            }
        }
        match &shared.app {
            AppKind::Local(frontend) => match frontend.begin(&request) {
                FrontendReply::Ready(response) => self.enqueue(response, close),
                FrontendReply::Pending(handle) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.slots.push_back(Slot::Waiting { close });
                    me.inflight.fetch_add(1, Ordering::Relaxed);
                    let me = Arc::clone(me);
                    let token = self.token;
                    // Runs on the dispatcher driver thread when the worker
                    // settles the invocation: encode there (cheap, zero-copy
                    // for single outputs) and wake the owning event loop.
                    handle.on_settle(move |outcome| {
                        me.post(LoopMsg::Complete {
                            token,
                            seq,
                            response: sync_invoke_response(outcome),
                        });
                    });
                }
            },
            AppKind::Gateway(router) => match router.dispatch(&request) {
                GatewayReply::Respond(response) => self.enqueue(response, close),
                GatewayReply::Control(op) => {
                    // Blocking control-plane work (member probes, broadcast
                    // registrations, drain relays) must not run on this loop
                    // thread — it would freeze every other connection the
                    // loop owns. Park a response slot and let the router's
                    // control thread post the completion back, exactly like
                    // a worker invocation settling.
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.slots.push_back(Slot::Waiting { close });
                    me.inflight.fetch_add(1, Ordering::Relaxed);
                    let me = Arc::clone(me);
                    let token = self.token;
                    router.submit_control(
                        op,
                        Box::new(move |response| {
                            me.post(LoopMsg::Complete {
                                token,
                                seq,
                                response,
                            });
                        }),
                    );
                }
                GatewayReply::Forward(plan) => {
                    // Park a response slot and hand the plan to the owning
                    // event loop (its own inbox — drained this iteration),
                    // which executes it on a pooled upstream connection.
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.slots.push_back(Slot::Waiting { close });
                    me.inflight.fetch_add(1, Ordering::Relaxed);
                    me.post(LoopMsg::Forward {
                        token: self.token,
                        seq,
                        plan: Box::new(plan),
                    });
                }
            },
        }
    }

    /// Queues a response that is already in hand.
    fn enqueue(&mut self, response: HttpResponse, close: bool) {
        self.next_seq += 1;
        self.slots.push_back(Slot::Ready { response, close });
        if close {
            self.stop_reading = true;
        }
    }

    /// Fills the `Waiting` slot `seq` with its settled response. Out-of-
    /// window sequences (a slot discarded by a close that raced the
    /// completion) are dropped silently.
    pub(crate) fn complete(&mut self, seq: u64, response: HttpResponse) {
        let Some(offset) = seq.checked_sub(self.front_seq) else {
            return;
        };
        if let Some(slot) = self.slots.get_mut(offset as usize) {
            if let Slot::Waiting { close } = *slot {
                *slot = Slot::Ready { response, close };
            }
        }
    }

    /// The mid-request read deadline fired: answer `408` and close (after
    /// any queued responses drain). Returns `Close` when there is nothing
    /// to flush at all.
    pub(crate) fn fire_request_timeout(&mut self, shared: &Shared) -> Verdict {
        shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        self.request_deadline = None;
        self.stop_reading = true;
        self.enqueue(timeout_response(), true);
        let stopping = shared.stopping.load(Ordering::Acquire);
        match self.flush(shared, stopping) {
            Flush::Close => Verdict::Close,
            _ => Verdict::Keep,
        }
    }

    /// Whether a deadline has passed, and which one.
    pub(crate) fn due(&self, now: Instant) -> Option<Due> {
        if let Some(deadline) = self.write_deadline {
            if now >= deadline {
                return Some(Due::WriteStalled);
            }
        }
        if let Some(deadline) = self.request_deadline {
            if now >= deadline && !self.stop_reading {
                return Some(Due::RequestStalled);
            }
        }
        if self.is_idle() && !self.stop_reading && now >= self.idle_deadline {
            return Some(Due::Idle);
        }
        None
    }

    /// Pushes queued responses onto the wire until everything ready is
    /// delivered or the socket refuses more bytes.
    fn flush(&mut self, shared: &Shared, stopping: bool) -> Flush {
        let mut progressed = false;
        loop {
            if let Some(writer) = &mut self.writer {
                if failpoint::enabled() && failpoint::check("conn/write").is_some() {
                    return Flush::Close;
                }
                match writer.write_some(&mut self.stream) {
                    Ok(true) => {
                        self.writer = None;
                        self.write_deadline = None;
                        self.write_progress_mark = 0;
                        progressed = true;
                        if self.close_after_write {
                            return Flush::Close;
                        }
                    }
                    Ok(false) => {
                        // Blocked mid-response: (re)arm the write deadline,
                        // crediting any bytes the client drained since the
                        // last arm — only a fully stalled reader expires.
                        let written = writer.written();
                        if self.write_deadline.is_none() || written > self.write_progress_mark {
                            self.write_deadline =
                                Some(Instant::now() + shared.config.write_timeout);
                            self.write_progress_mark = written;
                        }
                        return Flush::Blocked;
                    }
                    Err(_) => return Flush::Close,
                }
                continue;
            }
            match self.slots.front() {
                Some(Slot::Ready { .. }) => {
                    let Some(Slot::Ready { response, close }) = self.slots.pop_front() else {
                        // Invariant: the front slot was matched as `Ready`
                        // two lines up and nothing popped it in between. If
                        // the pipeline state machine ever breaks it, close
                        // this connection instead of unwinding a loop
                        // thread that owns thousands of others.
                        return Flush::Close;
                    };
                    self.front_seq += 1;
                    // A draining server closes keep-alives at the response
                    // boundary instead of mid-exchange.
                    let close = close || stopping;
                    if close {
                        self.stop_reading = true;
                        self.close_after_write = true;
                    }
                    self.writer = Some(RopeWriter::new(response_rope(response, close)));
                    progressed = true;
                }
                Some(Slot::Waiting { .. }) => break,
                None => {
                    if self.stop_reading {
                        // Everything owed is delivered and no more requests
                        // will be accepted.
                        return Flush::Close;
                    }
                    break;
                }
            }
        }
        if progressed {
            Flush::Progress
        } else {
            Flush::Blocked
        }
    }
}

/// Which per-connection deadline fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Due {
    /// A request's first byte arrived but the rest did not in time: `408`.
    RequestStalled,
    /// An idle keep-alive connection outlived the idle window: silent close.
    Idle,
    /// The in-flight response made no write progress within
    /// `write_timeout`: the client stopped reading, close silently.
    WriteStalled,
}

enum Flush {
    /// Something was written or popped; the caller should loop.
    Progress,
    /// Nothing more can happen until readiness or a completion.
    Blocked,
    /// The connection is done (close requested and delivered, or a write
    /// error).
    Close,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_http::ParseLimits;

    #[test]
    fn rejection_responses_carry_stable_codes() {
        let malformed = rejection_response(&HttpParseError::MalformedStartLine("x".into()));
        assert_eq!(malformed.status, StatusCode::BAD_REQUEST);
        assert!(malformed.body_text().contains("\"malformed_request\""));
        let oversized_head = rejection_response(&HttpParseError::LimitExceeded("head size"));
        assert_eq!(oversized_head.status.0, 431);
        assert!(oversized_head.body_text().contains("\"headers_too_large\""));
        let oversized_body = rejection_response(&HttpParseError::LimitExceeded("body size"));
        assert_eq!(oversized_body.status.0, 413);
        assert!(oversized_body.body_text().contains("\"body_too_large\""));
        assert_eq!(overloaded_response(7).status.0, 503);
        assert_eq!(timeout_response().status.0, 408);
        let limited = rate_limited_response(RateLimit {
            requests_per_sec: 5,
            burst: 10,
        });
        assert_eq!(limited.status.0, 429);
        assert!(limited.body_text().contains("\"rate_limited\""));
        assert!(limited.body_text().contains("\"retryable\":true"));
    }

    #[test]
    fn connection_header_negotiation() {
        let http11 = HttpRequest::get("/x");
        assert!(!wants_close(&http11));
        let close = HttpRequest::get("/x").with_header("Connection", "Close");
        assert!(wants_close(&close));
        let mut http10 = HttpRequest::get("/x");
        http10.version = Version::Http10;
        assert!(wants_close(&http10));
        let mut http10_keep = HttpRequest::get("/x").with_header("Connection", "keep-alive");
        http10_keep.version = Version::Http10;
        assert!(!wants_close(&http10_keep));
    }

    #[test]
    fn response_rope_stamps_the_connection_header() {
        let rope = response_rope(HttpResponse::ok(b"x".to_vec()), true);
        let text = String::from_utf8(rope.to_vec()).unwrap();
        assert!(text.contains("Connection: close\r\n"));
        let rope = response_rope(HttpResponse::ok(b"x".to_vec()), false);
        let text = String::from_utf8(rope.to_vec()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn decoder_limits_flow_into_rejections() {
        // An oversized declared body maps to 413 through the decoder path.
        let mut decoder = RequestDecoder::new(ParseLimits {
            max_head_bytes: 1024,
            max_body_bytes: 16,
        });
        decoder.feed(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\n");
        let error = decoder.next_request().unwrap_err();
        assert_eq!(rejection_response(&error).status.0, 413);
    }
}
