//! The epoll-driven event loops that multiplex every connection.
//!
//! A small, fixed pool of loop threads replaces the PR 4 model of one
//! handler thread per connection: each loop owns an [`Epoll`] instance, an
//! [`EventFd`] waker, and a slab of [`Conn`] state machines. All sockets
//! are non-blocking; a connection consumes memory only — never a thread —
//! while it is idle or while an invocation runs on the worker, which is
//! what lets two loops hold thousands of keep-alive connections open.
//!
//! Cross-thread traffic arrives through each loop's inbox: the accept path
//! (loop 0 owns the non-blocking listener) posts admitted connections
//! round-robin, and the dispatcher's completion callbacks post finished
//! responses ([`LoopMsg::Complete`]) — both followed by an `eventfd` signal
//! so the target loop wakes from `epoll_wait` immediately.
//!
//! Tokens carry a generation tag: when a connection closes its slab index
//! is recycled, and the bumped generation makes stale epoll events or
//! late completions for the old occupant fall harmlessly on the floor.

use std::collections::VecDeque;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dandelion_http::HttpResponse;
use parking_lot::Mutex;

use crate::conn::{overloaded_response, response_rope, Conn, Due, Verdict};
use crate::server::Shared;
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLRDHUP};

/// Token of the listener registration (loop 0 only).
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token of the loop's own waker eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Readiness events drained per `epoll_wait`.
const EVENT_BATCH: usize = 256;
/// Idle `epoll_wait` timeout; bounds how late a deadline scan can run.
const TICK_MS: i32 = 25;

/// A message for one event loop, posted by another thread.
pub(crate) enum LoopMsg {
    /// An admitted connection to adopt (from the accept path).
    Accept(TcpStream, IpAddr),
    /// A settled synchronous invocation's response for slot `seq` of the
    /// connection identified by `token`.
    Complete {
        token: u64,
        seq: u64,
        response: HttpResponse,
    },
}

/// The cross-thread half of one event loop: an inbox plus the eventfd that
/// wakes the loop to drain it. Shared with the accept path and with every
/// completion callback targeting this loop.
pub(crate) struct LoopShared {
    inbox: Mutex<VecDeque<LoopMsg>>,
    waker: EventFd,
}

impl LoopShared {
    pub(crate) fn new() -> std::io::Result<LoopShared> {
        Ok(LoopShared {
            inbox: Mutex::new(VecDeque::new()),
            waker: EventFd::new()?,
        })
    }

    /// Enqueues a message and wakes the loop.
    pub(crate) fn post(&self, msg: LoopMsg) {
        self.inbox.lock().push_back(msg);
        self.waker.signal();
    }

    /// Wakes the loop without a message (shutdown broadcast).
    pub(crate) fn wake(&self) {
        self.waker.signal();
    }

    fn drain(&self) -> VecDeque<LoopMsg> {
        self.waker.drain();
        std::mem::take(&mut *self.inbox.lock())
    }
}

/// One slab entry; the generation survives the occupant so stale tokens
/// can be recognized.
struct SlabEntry {
    generation: u32,
    conn: Option<Conn>,
}

/// One epoll-driven event loop thread.
pub(crate) struct EventLoop {
    index: usize,
    shared: Arc<Shared>,
    me: Arc<LoopShared>,
    epoll: Epoll,
    /// Loop 0 owns the (non-blocking) listener and runs the accept path.
    listener: Option<TcpListener>,
    slab: Vec<SlabEntry>,
    free: Vec<usize>,
    open: usize,
    /// Set when draining begins; connections still open past it are
    /// force-closed so shutdown cannot hang on a stuck client.
    drain_deadline: Option<Instant>,
}

fn token_of(index: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | index as u64
}

impl EventLoop {
    pub(crate) fn new(
        index: usize,
        shared: Arc<Shared>,
        listener: Option<TcpListener>,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        let me = Arc::clone(&shared.loops[index]);
        epoll.add(me.waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;
        if let Some(listener) = &listener {
            listener.set_nonblocking(true)?;
            epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        }
        Ok(EventLoop {
            index,
            shared,
            me,
            epoll,
            listener,
            slab: Vec::new(),
            free: Vec::new(),
            open: 0,
            drain_deadline: None,
        })
    }

    /// Runs until the server drains: stopping flag set and every owned
    /// connection released.
    pub(crate) fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        loop {
            let ready = self.epoll.wait(&mut events, TICK_MS).unwrap_or_default();
            let stopping = self.shared.stopping.load(Ordering::Acquire);
            if stopping && self.drain_deadline.is_none() {
                self.begin_drain();
            }
            for event in &events[..ready] {
                match event.data {
                    WAKER_TOKEN => {} // drained with the inbox below
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, event.events),
                }
            }
            self.drain_inbox();
            self.scan_deadlines();
            if self.shared.stopping.load(Ordering::Acquire) && self.open == 0 {
                return;
            }
        }
    }

    /// Stops admitting (loop 0 closes the listener) and sweeps idle
    /// connections; busy ones drain at their next response boundary, with a
    /// hard deadline backstop.
    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.shared.config.drain_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        for index in 0..self.slab.len() {
            if self.slab[index].conn.is_some() {
                self.service(index, false);
            }
        }
    }

    /// Accepts until the listener would block, applying admission control.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => self.admit(stream, peer.ip()),
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                // Persistent accept failures (fd exhaustion under flood)
                // leave the backlog entry in place, so the level-triggered
                // listener readiness re-fires immediately; back off briefly
                // instead of spinning this loop at 100% CPU.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    /// Admission control plus round-robin placement across the loops.
    fn admit(&mut self, stream: TcpStream, peer: IpAddr) {
        if self.shared.stopping.load(Ordering::Acquire) {
            return;
        }
        // `active` counts connections open plus in transit to a loop; past
        // the limit the client gets a 503 instead of unbounded queueing.
        if self.shared.active.fetch_add(1, Ordering::AcqRel) >= self.shared.config.max_connections {
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            self.reject(stream);
            return;
        }
        self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let target =
            self.shared.next_loop.fetch_add(1, Ordering::Relaxed) % self.shared.loops.len();
        if target == self.index {
            self.adopt(stream, peer);
        } else {
            self.shared.loops[target].post(LoopMsg::Accept(stream, peer));
        }
    }

    /// Answers a refused connection with `503` before closing it. The
    /// socket is still in blocking mode here and the body is far smaller
    /// than any socket buffer, so the write cannot stall the loop.
    fn reject(&self, mut stream: TcpStream) {
        self.shared
            .stats
            .rejected_connections
            .fetch_add(1, Ordering::Relaxed);
        let rope = response_rope(
            overloaded_response(self.shared.config.max_connections),
            true,
        );
        let _ = rope.write_to(&mut stream);
    }

    /// Takes ownership of an admitted connection: non-blocking, slab slot,
    /// epoll registration.
    fn adopt(&mut self, stream: TcpStream, peer: IpAddr) {
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.slab.push(SlabEntry {
                    generation: 0,
                    conn: None,
                });
                self.slab.len() - 1
            }
        };
        let token = token_of(index, self.slab[index].generation);
        let conn = Conn::new(stream, peer, token, &self.shared);
        if self
            .epoll
            .add(conn.stream().as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            self.free.push(index);
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        self.slab[index].conn = Some(conn);
        self.open += 1;
        self.shared
            .stats
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        // A freshly adopted connection may already have bytes waiting (the
        // level-triggered registration reports them on the next wait, but
        // serving them now saves a syscall round trip).
        self.service(index, true);
    }

    /// Routes one readiness event to its connection, ignoring stale tokens.
    fn conn_event(&mut self, token: u64, events: u32) {
        let index = (token & u32::MAX as u64) as usize;
        let generation = (token >> 32) as u32;
        let Some(entry) = self.slab.get(index) else {
            return;
        };
        if entry.generation != generation || entry.conn.is_none() {
            return;
        }
        if events & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(index);
            return;
        }
        // EPOLLRDHUP without data: the read path observes the EOF itself.
        self.service(index, events & (EPOLLIN | EPOLLRDHUP) != 0);
    }

    /// Pumps one connection and applies the verdict (close or re-arm).
    ///
    /// A panic while servicing must cost only that connection, never the
    /// loop thread (which owns thousands of others): the unwind is caught
    /// and the offending connection closed.
    fn service(&mut self, index: usize, readable: bool) {
        let shared = Arc::clone(&self.shared);
        let me = Arc::clone(&self.me);
        let verdict = {
            let Some(conn) = self.slab[index].conn.as_mut() else {
                return;
            };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                conn.pump(&shared, &me, readable)
            }))
            .unwrap_or(Verdict::Close)
        };
        match verdict {
            Verdict::Close => self.close(index),
            Verdict::Keep => self.rearm(index),
        }
    }

    /// Updates the epoll interest mask if the connection's needs changed.
    fn rearm(&mut self, index: usize) {
        let shared = Arc::clone(&self.shared);
        let generation = self.slab[index].generation;
        let Some(conn) = self.slab[index].conn.as_mut() else {
            return;
        };
        let desired = conn.desired_interest(&shared);
        if desired == conn.registered_interest() {
            return;
        }
        let token = token_of(index, generation);
        if self
            .epoll
            .modify(conn.stream().as_raw_fd(), desired, token)
            .is_ok()
        {
            conn.set_registered_interest(desired);
        }
    }

    /// Releases a connection: epoll deregistration, slab slot recycling
    /// (generation bump), gauge updates.
    fn close(&mut self, index: usize) {
        let Some(conn) = self.slab[index].conn.take() else {
            return;
        };
        let _ = self.epoll.delete(conn.stream().as_raw_fd());
        self.slab[index].generation = self.slab[index].generation.wrapping_add(1);
        self.free.push(index);
        self.open -= 1;
        self.shared
            .stats
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Applies queued cross-thread messages: adopted connections and
    /// settled invocation responses.
    fn drain_inbox(&mut self) {
        for msg in self.me.drain() {
            match msg {
                LoopMsg::Accept(stream, peer) => {
                    if self.shared.stopping.load(Ordering::Acquire) {
                        // Admitted but the server started draining before
                        // the loop adopted it: release the admission slot.
                        self.shared.active.fetch_sub(1, Ordering::AcqRel);
                        continue;
                    }
                    self.adopt(stream, peer);
                }
                LoopMsg::Complete {
                    token,
                    seq,
                    response,
                } => {
                    let index = (token & u32::MAX as u64) as usize;
                    let generation = (token >> 32) as u32;
                    let Some(entry) = self.slab.get_mut(index) else {
                        continue;
                    };
                    if entry.generation != generation {
                        continue;
                    }
                    if let Some(conn) = entry.conn.as_mut() {
                        conn.complete(seq, response);
                        self.service(index, false);
                    }
                }
            }
        }
    }

    /// Fires per-connection deadlines and the drain backstop.
    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        let force_close = self.drain_deadline.is_some_and(|deadline| now >= deadline);
        for index in 0..self.slab.len() {
            if self.slab[index].conn.is_none() {
                continue;
            }
            if force_close {
                self.close(index);
                continue;
            }
            let due = self.slab[index]
                .conn
                .as_ref()
                .and_then(|conn| conn.due(now));
            match due {
                Some(Due::Idle) => {
                    self.shared
                        .stats
                        .idle_closed
                        .fetch_add(1, Ordering::Relaxed);
                    self.close(index);
                }
                Some(Due::RequestStalled) => {
                    let shared = Arc::clone(&self.shared);
                    let verdict = self.slab[index].conn.as_mut().map(|conn| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            conn.fire_request_timeout(&shared)
                        }))
                        .unwrap_or(Verdict::Close)
                    });
                    match verdict {
                        Some(Verdict::Close) => self.close(index),
                        _ => self.rearm(index),
                    }
                }
                None => {}
            }
        }
    }
}
