//! The epoll-driven event loops that multiplex every connection.
//!
//! A small, fixed pool of loop threads replaces the PR 4 model of one
//! handler thread per connection: each loop owns an [`Epoll`] instance, an
//! [`EventFd`] waker, and a slab of connection state machines. All sockets
//! are non-blocking; a connection consumes memory only — never a thread —
//! while it is idle or while an invocation runs on the worker, which is
//! what lets two loops hold thousands of keep-alive connections open.
//!
//! The slab holds two kinds of endpoint. **Client** connections
//! ([`Conn`]) are the downstream side: requests in, responses out. In
//! gateway mode the slab also hosts **upstream** connections
//! ([`UpstreamConn`]) — pooled, pipelined keep-alive connections to
//! cluster members, owned per loop so a proxied exchange never crosses a
//! thread: the client parks a response slot, the forward rides an
//! upstream connection of the same loop, and the member's response is
//! delivered straight back into the client's slot, body by reference.
//!
//! Cross-thread traffic arrives through each loop's inbox — a lock-free
//! [`MpscQueue`] drained in whole batches: the accept path posts admitted
//! connections (fallback single-listener mode only; with `SO_REUSEPORT`
//! sharding each loop accepts its own), the dispatcher's completion
//! callbacks post finished responses ([`LoopMsg::Complete`]), and gateway
//! dispatch posts forward plans ([`LoopMsg::Forward`]). The `eventfd`
//! wakeup is conditional: a producer writes it only when it observes the
//! loop asleep (an atomic `sleeping` flag set around `epoll_wait`), so a
//! completion storm against a busy loop coalesces into zero syscalls —
//! the posted/wakeup counters in `/v1/stats` prove the coalescing.
//!
//! Connection registrations are **edge-triggered** (`EPOLLET`, full
//! interest mask registered once at adoption): the pumps drain until
//! `EWOULDBLOCK`, and no per-wakeup re-arm `epoll_ctl` call exists on the
//! hot path at all.
//!
//! Tokens carry a generation tag: when a connection closes its slab index
//! is recycled, and the bumped generation makes stale epoll events or
//! late completions for the old occupant fall harmlessly on the floor.

use std::collections::HashMap;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::mpsc::{Drain, MpscQueue};
use dandelion_common::rng::SplitMix64;
use dandelion_common::{fail_point, InvocationId, JsonValue, NodeId};
use dandelion_http::{HttpResponse, StatusCode};

use crate::conn::{overloaded_response, response_rope, Conn, Due, Verdict};
use crate::gateway::upstream::{Origin, UpstreamConn, UpstreamVerdict};
use crate::gateway::{proxy_response, upstream_failed_response, ForwardPlan, MemberLoad, Router};
use crate::server::{AppKind, Shared};
use crate::sys::{
    connect_nonblocking, Epoll, EpollEvent, EventFd, EMFILE, ENFILE, EPOLLERR, EPOLLET, EPOLLHUP,
    EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token of the loop's listener registration (every loop in sharded accept
/// mode, loop 0 only in fallback mode).
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token of the loop's own waker eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Readiness events drained per `epoll_wait`.
const EVENT_BATCH: usize = 256;
/// Idle `epoll_wait` timeout; bounds how late a deadline scan can run.
const TICK_MS: i32 = 25;
/// First backoff delay of a replanned forward, doubled per attempt; with
/// equal jitter the actual wait is uniform in `[base/2, base]`.
const RETRY_BACKOFF_BASE_MS: u64 = 10;
/// Backoff delay ceiling for replanned forwards.
const RETRY_BACKOFF_CAP_MS: u64 = 200;

/// A message for one event loop, posted by another thread (or by the loop
/// itself, for work it must finish outside a connection borrow).
pub(crate) enum LoopMsg {
    /// An admitted connection to adopt (from the accept path).
    Accept(TcpStream, IpAddr),
    /// A settled synchronous invocation's response for slot `seq` of the
    /// connection identified by `token`.
    Complete {
        token: u64,
        seq: u64,
        response: HttpResponse,
    },
    /// A gateway forward plan for slot `seq` of the client connection
    /// `token`: execute it on one of this loop's upstream connections.
    Forward {
        token: u64,
        seq: u64,
        plan: Box<ForwardPlan>,
    },
}

/// The cross-thread half of one event loop: a lock-free inbox plus the
/// eventfd that wakes the loop to drain it. Shared with the accept path and
/// with every completion callback targeting this loop.
pub(crate) struct LoopShared {
    inbox: MpscQueue<LoopMsg>,
    waker: EventFd,
    /// Set by the loop just before it blocks in `epoll_wait` with an empty
    /// inbox; swapped off by the first producer that posts into the sleep,
    /// which is the only producer that signals the eventfd.
    sleeping: AtomicBool,
    /// Gauge: connections owned by (or in transit to) this loop. Fed by the
    /// accept path's placement decision, drained by `close`.
    pub(crate) connections: AtomicUsize,
    /// Gauge: invocations in flight for connections on this loop (parked
    /// `Waiting` slots, including proxied upstream requests).
    pub(crate) inflight: AtomicUsize,
    /// Messages ever posted to this inbox.
    pub(crate) posted: AtomicU64,
    /// Eventfd signals actually written; `posted - wakeups` is the number
    /// of posts that found the loop awake and cost no syscall.
    pub(crate) wakeups: AtomicU64,
}

impl LoopShared {
    pub(crate) fn new() -> std::io::Result<LoopShared> {
        Ok(LoopShared {
            inbox: MpscQueue::new(),
            waker: EventFd::new()?,
            sleeping: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            posted: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        })
    }

    /// The placement score of this loop: open connections weighted with the
    /// work actually in flight, so a loop holding mostly-idle keep-alives
    /// still out-bids one driving busy invocations.
    pub(crate) fn load_score(&self) -> usize {
        self.connections.load(Ordering::Relaxed) + 4 * self.inflight.load(Ordering::Relaxed)
    }

    /// Approximate number of messages waiting in the inbox (stats gauge).
    pub(crate) fn inbox_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Enqueues a message, waking the loop only if it is (going) asleep.
    ///
    /// The push is a lock-free CAS; the eventfd `write(2)` happens only on
    /// the awake→asleep transition: `sleeping` is swapped off, so of any
    /// number of concurrent producers exactly one pays the syscall and a
    /// loop that is already draining pays nothing at all. The ordering
    /// argument is the same seqlock-style handshake as a futex wait: the
    /// loop sets `sleeping` *before* its final emptiness check, so a
    /// producer either sees `sleeping == true` (and signals) or its push
    /// is visible to that check (and the loop skips the blocking wait).
    pub(crate) fn post(&self, msg: LoopMsg) {
        fail_point!("loop/post");
        self.inbox.push(msg);
        self.posted.fetch_add(1, Ordering::Relaxed);
        if self.sleeping.swap(false, Ordering::SeqCst) {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            self.waker.signal();
        }
    }

    /// Wakes the loop without a message (shutdown broadcast). Always
    /// signals: shutdown is rare and must never be coalesced away.
    pub(crate) fn wake(&self) {
        fail_point!("loop/wakeup");
        self.sleeping.store(false, Ordering::SeqCst);
        self.waker.signal();
    }

    /// Announces the loop is about to block. Returns `false` — and cancels
    /// the announcement — when messages raced in, in which case the caller
    /// must poll instead of block.
    fn prepare_sleep(&self) -> bool {
        self.sleeping.store(true, Ordering::SeqCst);
        if self.inbox.is_empty() {
            true
        } else {
            self.sleeping.store(false, Ordering::SeqCst);
            false
        }
    }

    /// The loop is awake again; producers go back to skipping the signal.
    fn cancel_sleep(&self) {
        self.sleeping.store(false, Ordering::SeqCst);
    }

    /// Clears a delivered eventfd signal (called on its epoll event only,
    /// not once per iteration).
    fn clear_signal(&self) {
        self.waker.drain();
    }

    fn take_messages(&self) -> Drain<LoopMsg> {
        self.inbox.take_all()
    }
}

/// A slab occupant: a downstream client or (gateway mode) an upstream
/// member connection.
enum Endpoint {
    Client(Conn),
    Upstream(UpstreamConn),
}

/// One slab entry; the generation survives the occupant so stale tokens
/// can be recognized.
struct SlabEntry {
    generation: u32,
    endpoint: Option<Endpoint>,
}

/// A replanned forward waiting out its backoff delay; the deadline scan
/// re-attempts it once `due` passes.
struct PlannedRetry {
    due: Instant,
    token: u64,
    seq: u64,
    plan: ForwardPlan,
}

/// This loop's pooled upstream connections to one member.
struct NodePool {
    /// The member's gateway-side load gauges (shared with the router).
    load: Arc<MemberLoad>,
    /// Tokens of the live upstream connections (kept consistent by
    /// `close_upstream`).
    conns: Vec<u64>,
}

/// One epoll-driven event loop thread.
pub(crate) struct EventLoop {
    index: usize,
    shared: Arc<Shared>,
    me: Arc<LoopShared>,
    epoll: Epoll,
    /// Loop 0 owns the (non-blocking) listener and runs the accept path.
    listener: Option<TcpListener>,
    slab: Vec<SlabEntry>,
    free: Vec<usize>,
    /// Open **client** connections (upstreams do not count — the loop may
    /// exit a drain with idle upstreams still in the slab).
    open: usize,
    /// Gateway mode: per-member upstream connection pools.
    pools: HashMap<NodeId, NodePool>,
    /// Set when draining begins; connections still open past it are
    /// force-closed so shutdown cannot hang on a stuck client.
    drain_deadline: Option<Instant>,
    /// Replanned forwards waiting out their exponential backoff; drained
    /// by the deadline scan.
    retries: Vec<PlannedRetry>,
    /// Jitter source for the retry backoff (deterministic per loop).
    rng: SplitMix64,
    /// One file descriptor held in reserve so fd exhaustion can still be
    /// handled: on `EMFILE` the reserve is released, one flooding
    /// connection is accepted and immediately closed (clearing it from
    /// the backlog), and the reserve reopened.
    reserve_fd: Option<std::fs::File>,
}

fn token_of(index: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | index as u64
}

impl EventLoop {
    pub(crate) fn new(
        index: usize,
        shared: Arc<Shared>,
        listener: Option<TcpListener>,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        let me = Arc::clone(&shared.loops[index]);
        epoll.add(me.waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;
        if let Some(listener) = &listener {
            listener.set_nonblocking(true)?;
            epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        }
        Ok(EventLoop {
            index,
            shared,
            me,
            epoll,
            listener,
            slab: Vec::new(),
            free: Vec::new(),
            open: 0,
            pools: HashMap::new(),
            drain_deadline: None,
            retries: Vec::new(),
            rng: SplitMix64::new(0xBAC0_0FF5 ^ index as u64),
            reserve_fd: std::fs::File::open("/dev/null").ok(),
        })
    }

    /// The router, in gateway mode. Upstream machinery is unreachable in
    /// local mode, so the expect documents an invariant, not a user error.
    fn router(&self) -> Arc<Router> {
        match &self.shared.app {
            AppKind::Gateway(router) => Arc::clone(router),
            AppKind::Local(_) => unreachable!("upstream machinery requires gateway mode"),
        }
    }

    /// Runs until the server drains: stopping flag set and every owned
    /// client connection released.
    pub(crate) fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        loop {
            // Block only when the inbox is verifiably empty: `prepare_sleep`
            // raises the flag producers check, then re-checks the inbox, so
            // a message posted at any point either keeps the wait at a poll
            // or wakes it through the eventfd.
            let timeout_ms = if self.me.prepare_sleep() { TICK_MS } else { 0 };
            let ready = self.epoll.wait(&mut events, timeout_ms).unwrap_or_default();
            self.me.cancel_sleep();
            let stopping = self.shared.stopping.load(Ordering::Acquire);
            if stopping && self.drain_deadline.is_none() {
                self.begin_drain();
            }
            for event in &events[..ready] {
                match event.data {
                    WAKER_TOKEN => self.me.clear_signal(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, event.events),
                }
            }
            self.drain_inbox();
            self.scan_deadlines();
            if self.shared.stopping.load(Ordering::Acquire) && self.open == 0 {
                return;
            }
        }
    }

    /// Stops admitting (loop 0 closes the listener) and sweeps idle
    /// connections; busy ones drain at their next response boundary, with a
    /// hard deadline backstop. Idle upstream connections are released
    /// immediately — ones with pending responses finish their exchanges.
    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.shared.config.drain_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        for index in 0..self.slab.len() {
            match &self.slab[index].endpoint {
                Some(Endpoint::Client(_)) => self.service(index, false),
                Some(Endpoint::Upstream(upstream)) if upstream.depth() == 0 => {
                    self.close_upstream(index);
                }
                _ => {}
            }
        }
    }

    /// Accepts until the listener would block, applying admission control.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => self.admit(stream, peer.ip()),
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                // Out of file descriptors: the pending connection stays in
                // the backlog, where it would re-fire listener readiness
                // forever. Spend the reserve fd to accept and immediately
                // close it — the client gets a clean RST now instead of a
                // connect that hangs until the flood subsides.
                Err(error) if matches!(error.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                    self.shed_on_fd_exhaustion();
                    return;
                }
                // Other persistent accept failures leave the backlog entry
                // in place, so the level-triggered listener readiness
                // re-fires immediately; back off briefly instead of
                // spinning this loop at 100% CPU.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    /// The `EMFILE`/`ENFILE` path of [`EventLoop::accept_ready`]: release
    /// the reserve descriptor, use the freed slot to accept-and-close one
    /// backlogged connection, then reopen the reserve.
    fn shed_on_fd_exhaustion(&mut self) {
        self.reserve_fd.take();
        if let Some(listener) = &self.listener {
            if let Ok((stream, _)) = listener.accept() {
                self.shared
                    .stats
                    .accept_overflow
                    .fetch_add(1, Ordering::Relaxed);
                drop(stream);
            }
        }
        self.reserve_fd = std::fs::File::open("/dev/null").ok();
        if self.reserve_fd.is_none() {
            // Could not even reopen `/dev/null`: descriptors are still
            // exhausted, so pause rather than re-fire accept instantly.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    /// Admission control plus placement. With sharded (`SO_REUSEPORT`)
    /// accept the kernel already load-balanced the connection to this
    /// loop's listener, so the loop adopts it locally — no cross-loop
    /// hand-off on the admission path at all. In fallback single-listener
    /// mode the accepting loop reads every loop's connection and in-flight
    /// gauges and hands the connection to the cheapest one (itself
    /// included).
    fn admit(&mut self, stream: TcpStream, peer: IpAddr) {
        if self.shared.stopping.load(Ordering::Acquire) {
            return;
        }
        // `active` counts connections open plus in transit to a loop; past
        // the limit the client gets a 503 instead of unbounded queueing.
        if self.shared.active.fetch_add(1, Ordering::AcqRel) >= self.shared.config.max_connections {
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            self.reject(stream);
            return;
        }
        self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let target = if self.shared.config.reuseport {
            self.index
        } else {
            self.shared
                .loops
                .iter()
                .enumerate()
                .min_by_key(|(_, loop_shared)| loop_shared.load_score())
                .map(|(index, _)| index)
                .unwrap_or(self.index)
        };
        // Count the connection against the target immediately so the next
        // placement decision sees it even before the target loop adopts it.
        self.shared.loops[target]
            .connections
            .fetch_add(1, Ordering::Relaxed);
        if target == self.index {
            self.adopt(stream, peer);
        } else {
            self.shared.loops[target].post(LoopMsg::Accept(stream, peer));
        }
    }

    /// Answers a refused connection with `503` before closing it. The
    /// socket is still in blocking mode here and the body is far smaller
    /// than any socket buffer, so the write cannot stall the loop.
    fn reject(&self, mut stream: TcpStream) {
        self.shared
            .stats
            .rejected_connections
            .fetch_add(1, Ordering::Relaxed);
        let rope = response_rope(
            overloaded_response(self.shared.config.max_connections),
            true,
        );
        let _ = rope.write_to(&mut stream);
    }

    /// Allocates a slab slot, returning its index.
    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(index) => index,
            None => {
                self.slab.push(SlabEntry {
                    generation: 0,
                    endpoint: None,
                });
                self.slab.len() - 1
            }
        }
    }

    /// Takes ownership of an admitted connection: non-blocking, slab slot,
    /// epoll registration.
    fn adopt(&mut self, stream: TcpStream, peer: IpAddr) {
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            self.me.connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let index = self.alloc_slot();
        let token = token_of(index, self.slab[index].generation);
        let conn = Conn::new(stream, peer, token, &self.shared);
        // Edge-triggered with the full interest mask, registered exactly
        // once: the pumps drain until `EWOULDBLOCK`, so this connection
        // never pays another `epoll_ctl` until it closes.
        if self
            .epoll
            .add(
                conn.stream().as_raw_fd(),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            )
            .is_err()
        {
            self.free.push(index);
            self.shared.active.fetch_sub(1, Ordering::AcqRel);
            self.me.connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.slab[index].endpoint = Some(Endpoint::Client(conn));
        self.open += 1;
        self.shared
            .stats
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        // A freshly adopted connection may already have bytes waiting:
        // pump it immediately rather than waiting for the registration's
        // initial readiness event.
        self.service(index, true);
    }

    /// Routes one readiness event to its endpoint, ignoring stale tokens.
    fn conn_event(&mut self, token: u64, events: u32) {
        let index = (token & u32::MAX as u64) as usize;
        let generation = (token >> 32) as u32;
        let Some(entry) = self.slab.get(index) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        let hangup = events & (EPOLLERR | EPOLLHUP) != 0;
        let readable = events & (EPOLLIN | EPOLLRDHUP) != 0;
        match &entry.endpoint {
            None => {}
            Some(Endpoint::Client(_)) => {
                if hangup {
                    self.close_client(index);
                } else {
                    // EPOLLRDHUP without data: the read path observes the
                    // EOF itself.
                    self.service(index, readable);
                }
            }
            Some(Endpoint::Upstream(_)) => {
                if hangup {
                    self.fail_upstream(index);
                } else {
                    // Writability matters here beyond resuming writes: on a
                    // connecting socket it is the kernel's connect-success
                    // signal.
                    let writable = events & EPOLLOUT != 0;
                    self.service_upstream(index, readable, writable);
                }
            }
        }
    }

    /// Pumps one client connection and applies the verdict.
    ///
    /// A panic while servicing must cost only that connection, never the
    /// loop thread (which owns thousands of others): the unwind is caught
    /// and the offending connection closed.
    fn service(&mut self, index: usize, readable: bool) {
        let shared = Arc::clone(&self.shared);
        let me = Arc::clone(&self.me);
        let verdict = {
            let Some(Endpoint::Client(conn)) = self.slab[index].endpoint.as_mut() else {
                return;
            };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                conn.pump(&shared, &me, readable)
            }))
            .unwrap_or(Verdict::Close)
        };
        if verdict == Verdict::Close {
            self.close_client(index);
        }
    }

    /// Pumps one upstream connection: writes queued forwards, decodes
    /// member responses, and delivers each to its waiting client slot.
    fn service_upstream(&mut self, index: usize, readable: bool, writable: bool) {
        let read_chunk = self.shared.config.read_chunk_bytes;
        let (verdict, delivered, node) = {
            let Some(Endpoint::Upstream(upstream)) = self.slab[index].endpoint.as_mut() else {
                return;
            };
            if writable {
                upstream.note_writable();
            }
            let node = upstream.node();
            let (verdict, delivered) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    upstream.pump(readable, read_chunk)
                }))
                .unwrap_or((UpstreamVerdict::Close, Vec::new()));
            (verdict, delivered, node)
        };
        for (origin, response) in delivered {
            self.deliver(node, origin, response);
        }
        if verdict == UpstreamVerdict::Close {
            self.fail_upstream(index);
        }
    }

    /// Releases a client connection: epoll deregistration, slab slot
    /// recycling (generation bump), gauge updates.
    fn close_client(&mut self, index: usize) {
        let Some(Endpoint::Client(conn)) = self.slab[index].endpoint.take() else {
            return;
        };
        let _ = self.epoll.delete(conn.stream().as_raw_fd());
        self.slab[index].generation = self.slab[index].generation.wrapping_add(1);
        self.free.push(index);
        self.open -= 1;
        self.shared
            .stats
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.me.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Releases an upstream connection (no admission gauges — upstreams
    /// are not admitted connections) and removes it from its pool.
    /// Returns the connection so teardown can disposition its exchanges.
    fn close_upstream(&mut self, index: usize) -> Option<UpstreamConn> {
        let token = token_of(index, self.slab[index].generation);
        let Some(Endpoint::Upstream(upstream)) = self.slab[index].endpoint.take() else {
            return None;
        };
        let _ = self.epoll.delete(upstream.stream().as_raw_fd());
        self.slab[index].generation = self.slab[index].generation.wrapping_add(1);
        self.free.push(index);
        if let Some(pool) = self.pools.get_mut(&upstream.node()) {
            pool.conns.retain(|&existing| existing != token);
        }
        Some(upstream)
    }

    /// An upstream connection died. Exchanges already on the wire fail
    /// with `502` — the member may have executed them, so replaying is not
    /// safe. Exchanges still queued never left the gateway and are
    /// replayed on another member, so a killed node costs only its truly
    /// in-flight requests.
    fn fail_upstream(&mut self, index: usize) {
        let Some(mut upstream) = self.close_upstream(index) else {
            return;
        };
        let node = upstream.node();
        let router = self.router();
        router.note_upstream_failure(node);
        let unsent = upstream.take_unsent();
        let sent = upstream.take_pending();
        let load = self.pools.get(&node).map(|pool| Arc::clone(&pool.load));
        for origin in sent {
            if let Some(load) = &load {
                router.note_settled(load, origin.bytes);
            }
            router.note_upstream_error();
            self.complete_client(origin.token, origin.seq, upstream_failed_response(node));
        }
        for (rope, origin) in unsent {
            if let Some(load) = &load {
                router.note_settled(load, origin.bytes);
            }
            match router.plan_fallback(node, rope, origin.bytes, origin.track_submit) {
                Some(plan) => self.forward(origin.token, origin.seq, plan),
                None => {
                    router.note_upstream_error();
                    self.complete_client(origin.token, origin.seq, upstream_failed_response(node));
                }
            }
        }
    }

    /// Executes a forward plan: find (or open) an upstream connection to
    /// the planned member and pipeline the exchange onto it. Connect
    /// failures re-plan onto another member (within the retry budget and
    /// attempt ceiling), but the next attempt waits out an exponential
    /// backoff with equal jitter rather than hammering the cluster in a
    /// tight loop — the deadline scan re-fires it.
    fn forward(&mut self, token: u64, seq: u64, mut plan: ForwardPlan) {
        let router = self.router();
        if let Some(upstream_index) = self.upstream_for(&plan) {
            if let Some(Endpoint::Upstream(upstream)) = self.slab[upstream_index].endpoint.as_mut()
            {
                router.note_forward(&plan.load, plan.bytes);
                let origin = Origin {
                    token,
                    seq,
                    bytes: plan.bytes,
                    track_submit: plan.track_submit,
                };
                upstream.enqueue(plan.rope, origin);
                self.service_upstream(upstream_index, false, false);
            } else {
                // Invariant: `upstream_for` returned a live upstream slot.
                // If the pool bookkeeping ever breaks it, fail this one
                // exchange with a clean 502 instead of panicking the loop
                // thread that owns every other connection.
                router.note_upstream_error();
                self.complete_client(token, seq, upstream_failed_response(plan.node));
            }
            return;
        }
        // Could not reach the member at all: nothing was sent, so the
        // exchange is free to try elsewhere.
        router.note_upstream_failure(plan.node);
        let failed = plan.node;
        plan.tried.push(failed);
        match router.replan(plan) {
            Some(next) => self.schedule_retry(token, seq, next),
            None => {
                router.note_upstream_error();
                self.complete_client(token, seq, upstream_failed_response(failed));
            }
        }
    }

    /// Parks a replanned forward until its backoff expires. The delay is
    /// exponential in the attempt count with *equal jitter* — uniform in
    /// `[base/2, base]` — so concurrent failures against a member spread
    /// their retries instead of arriving as a synchronized thundering
    /// herd. The loop's `TICK_MS` idle timeout bounds how late the
    /// deadline scan picks it back up.
    fn schedule_retry(&mut self, token: u64, seq: u64, plan: ForwardPlan) {
        let attempt = plan.tried.len().min(8) as u32;
        let base = RETRY_BACKOFF_BASE_MS
            .saturating_mul(1 << attempt)
            .min(RETRY_BACKOFF_CAP_MS);
        let delay = base / 2 + self.rng.next_bounded(base / 2 + 1);
        self.retries.push(PlannedRetry {
            due: Instant::now() + Duration::from_millis(delay),
            token,
            seq,
            plan,
        });
    }

    /// The upstream connection a new exchange for `plan.node` should ride:
    /// the shallowest pooled connection, or a fresh one while the pool is
    /// below its per-loop budget and everything pooled is busy.
    fn upstream_for(&mut self, plan: &ForwardPlan) -> Option<usize> {
        let limit = self.router().config().upstreams_per_loop.max(1);
        let pool = self.pools.entry(plan.node).or_insert_with(|| NodePool {
            load: Arc::clone(&plan.load),
            conns: Vec::new(),
        });
        let pooled = pool.conns.len();
        let mut best: Option<(usize, usize)> = None;
        for &token in &pool.conns {
            let index = (token & u32::MAX as u64) as usize;
            let Some(Endpoint::Upstream(upstream)) = self.slab[index].endpoint.as_ref() else {
                continue;
            };
            let depth = upstream.depth();
            if best.is_none_or(|(_, best_depth)| depth < best_depth) {
                best = Some((index, depth));
            }
        }
        let all_busy = best.is_none_or(|(_, depth)| depth > 0);
        if all_busy && pooled < limit {
            if let Some(index) = self.connect_upstream(plan) {
                return Some(index);
            }
        }
        best.map(|(index, _)| index)
    }

    /// Opens a new upstream connection to the planned member. The connect
    /// is non-blocking: the loop keeps serving its other connections while
    /// the handshake is in flight. Exchanges queue on the connecting
    /// connection; a failed connect surfaces as `EPOLLERR`/`EPOLLHUP` (or a
    /// write error) and [`EventLoop::fail_upstream`] replays everything
    /// still unsent on another member. A handshake that never completes is
    /// failed by the deadline scan after the router's `connect_timeout`.
    fn connect_upstream(&mut self, plan: &ForwardPlan) -> Option<usize> {
        let stream = connect_nonblocking(&plan.addr).ok()?;
        stream.set_nodelay(true).ok()?;
        let index = self.alloc_slot();
        let token = token_of(index, self.slab[index].generation);
        let upstream = UpstreamConn::new(stream, plan.node, self.shared.config.limits, true);
        // Edge-triggered like the client side; EPOLLOUT doubles as the
        // kernel's connect-success signal on the non-blocking handshake.
        if self
            .epoll
            .add(
                upstream.stream().as_raw_fd(),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            )
            .is_err()
        {
            self.free.push(index);
            return None;
        }
        self.slab[index].endpoint = Some(Endpoint::Upstream(upstream));
        if let Some(pool) = self.pools.get_mut(&plan.node) {
            pool.conns.push(token);
        }
        Some(index)
    }

    /// Delivers a member's response to the client slot that parked for it:
    /// load gauges released, submit responses remembered for owner-routed
    /// polls, hop-by-hop headers rewritten — the body buffer untouched.
    fn deliver(&mut self, node: NodeId, origin: Origin, response: HttpResponse) {
        let router = self.router();
        if let Some(pool) = self.pools.get(&node) {
            router.note_settled(&pool.load, origin.bytes);
            // Any answered exchange is a data-path success: it refills the
            // member's retry budget and closes a half-open circuit.
            router.note_upstream_success(&pool.load);
        }
        if origin.track_submit && response.status == StatusCode::ACCEPTED {
            if let Ok(document) = JsonValue::parse(&response.body_text()) {
                if let Some(id) = document
                    .get("invocation_id")
                    .and_then(JsonValue::as_str)
                    .and_then(InvocationId::parse)
                {
                    router.record_invocation(id, node);
                }
            }
        }
        self.complete_client(origin.token, origin.seq, proxy_response(response, node));
    }

    /// Fills a client's waiting slot with its response and services the
    /// connection. Stale tokens (the client closed first) are dropped; the
    /// in-flight gauge is released either way.
    fn complete_client(&mut self, token: u64, seq: u64, response: HttpResponse) {
        // Paired with the increment when the slot was parked; settled work
        // leaves the load score even when the connection died before its
        // completion arrived.
        self.me.inflight.fetch_sub(1, Ordering::Relaxed);
        let index = (token & u32::MAX as u64) as usize;
        let generation = (token >> 32) as u32;
        let Some(entry) = self.slab.get_mut(index) else {
            return;
        };
        if entry.generation != generation {
            return;
        }
        if let Some(Endpoint::Client(conn)) = entry.endpoint.as_mut() {
            conn.complete(seq, response);
            self.service(index, false);
        }
    }

    /// Applies queued cross-thread messages: adopted connections, settled
    /// invocation responses, and gateway forward plans.
    fn drain_inbox(&mut self) {
        for msg in self.me.take_messages() {
            match msg {
                LoopMsg::Accept(stream, peer) => {
                    if self.shared.stopping.load(Ordering::Acquire) {
                        // Admitted but the server started draining before
                        // the loop adopted it: release the admission slot.
                        self.shared.active.fetch_sub(1, Ordering::AcqRel);
                        self.me.connections.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    self.adopt(stream, peer);
                }
                LoopMsg::Complete {
                    token,
                    seq,
                    response,
                } => self.complete_client(token, seq, response),
                LoopMsg::Forward { token, seq, plan } => self.forward(token, seq, *plan),
            }
        }
    }

    /// Fires per-connection deadlines, due forward retries, and the drain
    /// backstop.
    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        let force_close = self.drain_deadline.is_some_and(|deadline| now >= deadline);
        // Re-fire forwards whose backoff expired (all of them at the drain
        // backstop — they either go through or fail fast to the client).
        if !self.retries.is_empty() {
            let mut due = Vec::new();
            let mut index = 0;
            while index < self.retries.len() {
                if force_close || now >= self.retries[index].due {
                    due.push(self.retries.swap_remove(index));
                } else {
                    index += 1;
                }
            }
            for retry in due {
                self.forward(retry.token, retry.seq, retry.plan);
            }
        }
        for index in 0..self.slab.len() {
            enum Action {
                None,
                CloseIdle,
                CloseWriteStalled,
                FireRequestTimeout,
                FailUpstream,
                ForceCloseClient,
            }
            let action = match &self.slab[index].endpoint {
                None => Action::None,
                Some(Endpoint::Client(conn)) => {
                    if force_close {
                        Action::ForceCloseClient
                    } else {
                        match conn.due(now) {
                            Some(Due::Idle) => Action::CloseIdle,
                            Some(Due::WriteStalled) => Action::CloseWriteStalled,
                            Some(Due::RequestStalled) => Action::FireRequestTimeout,
                            None => Action::None,
                        }
                    }
                }
                Some(Endpoint::Upstream(upstream)) => {
                    let stalled = match &self.shared.app {
                        AppKind::Gateway(router) => {
                            let config = router.config();
                            // A connecting socket answers to the short
                            // connect budget; an established one to the
                            // response stall deadline.
                            let timeout = if upstream.is_connecting() {
                                config.connect_timeout
                            } else {
                                config.upstream_timeout
                            };
                            upstream.stalled(now, timeout)
                        }
                        AppKind::Local(_) => false,
                    };
                    if force_close || stalled {
                        Action::FailUpstream
                    } else {
                        Action::None
                    }
                }
            };
            match action {
                Action::None => {}
                Action::ForceCloseClient => self.close_client(index),
                Action::CloseIdle => {
                    self.shared
                        .stats
                        .idle_closed
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_client(index);
                }
                Action::CloseWriteStalled => {
                    // The client is not reading its response; there is no
                    // point writing an error it will not read either.
                    self.shared
                        .stats
                        .write_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_client(index);
                }
                Action::FailUpstream => self.fail_upstream(index),
                Action::FireRequestTimeout => {
                    let shared = Arc::clone(&self.shared);
                    let verdict = match self.slab[index].endpoint.as_mut() {
                        Some(Endpoint::Client(conn)) => Some(
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                conn.fire_request_timeout(&shared)
                            }))
                            .unwrap_or(Verdict::Close),
                        ),
                        _ => None,
                    };
                    if verdict == Some(Verdict::Close) {
                        self.close_client(index);
                    }
                }
            }
        }
    }
}
