//! The gateway's membership table.
//!
//! Each member is a worker node reachable over the v1 HTTP protocol. The
//! table records what the node advertised (its compositions, refreshed on
//! every health probe so changes re-advertise automatically), its health
//! state, and the gateway-side load gauges the router places by: requests
//! in flight to the node and bytes queued toward it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dandelion_common::{JsonValue, NodeId};

/// Health / lifecycle state of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Probes succeed; the router sends new work here.
    Healthy,
    /// Consecutive failures crossed the ejection threshold: no new work
    /// until a probe succeeds again (re-admission).
    Ejected,
    /// Draining for a rolling restart: no new work; the member is removed
    /// once its in-flight count reaches zero.
    Draining,
}

impl MemberState {
    /// Stable lowercase name used in the membership JSON document.
    pub fn as_str(&self) -> &'static str {
        match self {
            MemberState::Healthy => "healthy",
            MemberState::Ejected => "ejected",
            MemberState::Draining => "draining",
        }
    }
}

/// Gateway-side load gauges of one member, updated by the event loops as
/// requests are forwarded and settled. Shared via `Arc` so routing reads
/// them without holding the table lock.
#[derive(Debug, Default)]
pub struct MemberLoad {
    /// Requests forwarded and not yet answered (or failed).
    pub in_flight: AtomicUsize,
    /// Serialized request bytes accepted for this member and not yet
    /// settled — the "queued bytes" half of the load score.
    pub queued_bytes: AtomicUsize,
}

impl MemberLoad {
    /// The routing score: in-flight requests weighted with queued payload
    /// (16 KiB of unsent body counts like one extra request).
    pub fn score(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
            + self.queued_bytes.load(Ordering::Relaxed) / (16 * 1024)
    }
}

/// One row of the membership table.
pub struct Member {
    /// Cluster-wide identity assigned at join.
    pub id: NodeId,
    /// Where the member's v1 HTTP server listens.
    pub addr: SocketAddr,
    /// Current health / lifecycle state.
    pub state: MemberState,
    /// Consecutive probe or data-path failures since the last success.
    pub failures: u32,
    /// Compositions the node advertised on its last successful probe.
    pub compositions: Vec<String>,
    /// Gateway-side load gauges.
    pub load: Arc<MemberLoad>,
}

impl Member {
    /// A freshly joined member.
    pub fn new(addr: SocketAddr, state: MemberState, compositions: Vec<String>) -> Member {
        Member {
            id: NodeId::next(),
            addr,
            state,
            failures: 0,
            compositions,
            load: Arc::new(MemberLoad::default()),
        }
    }

    /// Whether the router may send new work here.
    pub fn routable(&self) -> bool {
        self.state == MemberState::Healthy
    }

    /// Whether this member advertises `composition`.
    pub fn advertises(&self, composition: &str) -> bool {
        self.compositions.iter().any(|name| name == composition)
    }

    /// The member as one entry of the membership JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("node", JsonValue::string(self.id.to_string())),
            ("addr", JsonValue::string(self.addr.to_string())),
            ("state", JsonValue::string(self.state.as_str())),
            ("failures", JsonValue::from(u64::from(self.failures))),
            (
                "in_flight",
                JsonValue::from(self.load.in_flight.load(Ordering::Relaxed)),
            ),
            (
                "queued_bytes",
                JsonValue::from(self.load.queued_bytes.load(Ordering::Relaxed)),
            ),
            (
                "compositions",
                JsonValue::array(
                    self.compositions
                        .iter()
                        .map(|name| JsonValue::string(name.clone())),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_score_weighs_queued_bytes() {
        let load = MemberLoad::default();
        assert_eq!(load.score(), 0);
        load.in_flight.store(3, Ordering::Relaxed);
        load.queued_bytes.store(64 * 1024, Ordering::Relaxed);
        assert_eq!(load.score(), 3 + 4);
    }

    #[test]
    fn member_json_carries_identity_and_state() {
        let member = Member::new(
            "127.0.0.1:9000".parse().unwrap(),
            MemberState::Healthy,
            vec!["EchoComp".to_string()],
        );
        assert!(member.routable());
        assert!(member.advertises("EchoComp"));
        assert!(!member.advertises("Other"));
        let json = member.to_json().to_json_string();
        assert!(json.contains("\"state\":\"healthy\""));
        assert!(json.contains("EchoComp"));
    }
}
