//! The gateway's membership table.
//!
//! Each member is a worker node reachable over the v1 HTTP protocol. The
//! table records what the node advertised (its compositions, refreshed on
//! every health probe so changes re-advertise automatically), its health
//! state, and the gateway-side load gauges the router places by: requests
//! in flight to the node and bytes queued toward it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dandelion_common::{JsonValue, NodeId};

/// Health / lifecycle state of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Probes succeed; the router sends new work here.
    Healthy,
    /// Consecutive failures crossed the ejection threshold: no new work
    /// until a probe succeeds again (re-admission).
    Ejected,
    /// Draining for a rolling restart: no new work; the member is removed
    /// once its in-flight count reaches zero.
    Draining,
}

impl MemberState {
    /// Stable lowercase name used in the membership JSON document.
    pub fn as_str(&self) -> &'static str {
        match self {
            MemberState::Healthy => "healthy",
            MemberState::Ejected => "ejected",
            MemberState::Draining => "draining",
        }
    }
}

/// One success deposits `1` token unit and one retry withdraws
/// [`RETRY_BUDGET_SCALE`] units, capping sustained retries at ~10% of
/// recent successes.
const RETRY_BUDGET_SCALE: usize = 10;
/// Token ceiling: at most 100 banked retries, so a long quiet streak of
/// successes cannot fund an unbounded retry storm later.
const RETRY_BUDGET_MAX: usize = 100 * RETRY_BUDGET_SCALE;
/// Cold-start balance: 10 retries before any success is observed, enough
/// to ride out a member restarting during gateway boot.
const RETRY_BUDGET_INITIAL: usize = 10 * RETRY_BUDGET_SCALE;

/// A token-bucket retry budget: retries against a member are funded by
/// that member's recent successes, so a down cluster is not DDoS'd by its
/// own gateway replaying every failure (the classic retry-budget design
/// from the SRE literature, fixed-point with integer atomics).
#[derive(Debug)]
pub struct RetryBudget {
    /// Token units (`RETRY_BUDGET_SCALE` units = one retry).
    tokens: AtomicUsize,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget {
            tokens: AtomicUsize::new(RETRY_BUDGET_INITIAL),
        }
    }
}

impl RetryBudget {
    /// A delivered response funds a sliver of future retry capacity.
    pub fn note_success(&self) {
        let _ = self
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |tokens| {
                (tokens < RETRY_BUDGET_MAX).then_some(tokens + 1)
            });
    }

    /// Attempts to withdraw one retry's worth of tokens; `false` means the
    /// budget is exhausted and the caller must fail fast instead.
    pub fn try_withdraw(&self) -> bool {
        self.tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |tokens| {
                tokens.checked_sub(RETRY_BUDGET_SCALE)
            })
            .is_ok()
    }

    /// Whole retries currently funded (stats/debugging).
    pub fn balance(&self) -> usize {
        self.tokens.load(Ordering::Relaxed) / RETRY_BUDGET_SCALE
    }
}

/// Minimum events in the rolling window before the breaker may trip: one
/// early error on a quiet member must not open the circuit.
const CIRCUIT_MIN_EVENTS: usize = 5;

const CIRCUIT_CLOSED: usize = 0;
const CIRCUIT_OPEN: usize = 1;
const CIRCUIT_HALF_OPEN: usize = 2;

/// A per-member circuit breaker layered *under* the eject logic: where
/// ejection reacts to consecutive probe/connect failures, the breaker
/// reacts to the data-path error **rate**, so a member that answers
/// probes but fails half its real traffic still stops receiving work.
///
/// Closed → Open when the windowed error count reaches the success count
/// with at least [`CIRCUIT_MIN_EVENTS`] observations. Open → HalfOpen when
/// a health probe succeeds (the health thread doubles as the half-open
/// prober). HalfOpen → Closed on the first delivered response, back to
/// Open on the first error.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    /// `CIRCUIT_CLOSED` / `CIRCUIT_OPEN` / `CIRCUIT_HALF_OPEN`.
    state: AtomicUsize,
    /// Rolling window of delivered responses (decayed by the health thread).
    successes: AtomicUsize,
    /// Rolling window of data-path errors (decayed by the health thread).
    errors: AtomicUsize,
    /// Times the breaker tripped open (monotonic, for stats).
    trips: AtomicUsize,
}

impl CircuitBreaker {
    /// Whether the router may place new work behind this breaker.
    pub fn allows(&self) -> bool {
        self.state.load(Ordering::Relaxed) != CIRCUIT_OPEN
    }

    /// Stable state name for the membership document.
    pub fn state_str(&self) -> &'static str {
        match self.state.load(Ordering::Relaxed) {
            CIRCUIT_OPEN => "open",
            CIRCUIT_HALF_OPEN => "half_open",
            _ => "closed",
        }
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> usize {
        self.trips.load(Ordering::Relaxed)
    }

    /// A response was delivered from this member.
    pub fn note_success(&self) {
        self.successes.fetch_add(1, Ordering::Relaxed);
        // A half-open trial that succeeds re-closes the circuit with a
        // fresh window.
        if self
            .state
            .compare_exchange(
                CIRCUIT_HALF_OPEN,
                CIRCUIT_CLOSED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.reset_window();
        }
    }

    /// A data-path exchange against this member failed.
    pub fn note_error(&self) {
        let errors = self.errors.fetch_add(1, Ordering::Relaxed) + 1;
        match self.state.load(Ordering::Relaxed) {
            // A half-open trial that fails re-opens immediately.
            CIRCUIT_HALF_OPEN => {
                let _ = self.state.compare_exchange(
                    CIRCUIT_HALF_OPEN,
                    CIRCUIT_OPEN,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            CIRCUIT_CLOSED => {
                let successes = self.successes.load(Ordering::Relaxed);
                if errors + successes >= CIRCUIT_MIN_EVENTS
                    && errors >= successes
                    && self
                        .state
                        .compare_exchange(
                            CIRCUIT_CLOSED,
                            CIRCUIT_OPEN,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    self.reset_window();
                }
            }
            _ => {}
        }
    }

    /// The health thread observed a successful probe: an open circuit is
    /// re-admitted for one half-open trial.
    pub fn note_probe_success(&self) {
        let _ = self.state.compare_exchange(
            CIRCUIT_OPEN,
            CIRCUIT_HALF_OPEN,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Ages the rolling window (called once per health-probe pass): the
    /// breaker judges recent error rate, not all-time totals.
    pub fn decay(&self) {
        let _ = self
            .errors
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n / 2));
        let _ = self
            .successes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n / 2));
    }

    fn reset_window(&self) {
        self.errors.store(0, Ordering::Relaxed);
        self.successes.store(0, Ordering::Relaxed);
    }
}

/// Gateway-side load gauges of one member, updated by the event loops as
/// requests are forwarded and settled. Shared via `Arc` so routing reads
/// them without holding the table lock.
#[derive(Debug, Default)]
pub struct MemberLoad {
    /// Requests forwarded and not yet answered (or failed).
    pub in_flight: AtomicUsize,
    /// Serialized request bytes accepted for this member and not yet
    /// settled — the "queued bytes" half of the load score.
    pub queued_bytes: AtomicUsize,
    /// Token-bucket budget gating forward retries against this member.
    pub retry_budget: RetryBudget,
    /// Error-rate circuit breaker gating new work toward this member.
    pub circuit: CircuitBreaker,
}

impl MemberLoad {
    /// The routing score: in-flight requests weighted with queued payload
    /// (16 KiB of unsent body counts like one extra request).
    pub fn score(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
            + self.queued_bytes.load(Ordering::Relaxed) / (16 * 1024)
    }
}

/// One row of the membership table.
pub struct Member {
    /// Cluster-wide identity assigned at join.
    pub id: NodeId,
    /// Where the member's v1 HTTP server listens.
    pub addr: SocketAddr,
    /// Current health / lifecycle state.
    pub state: MemberState,
    /// Consecutive probe or data-path failures since the last success.
    pub failures: u32,
    /// Compositions the node advertised on its last successful probe.
    pub compositions: Vec<String>,
    /// Gateway-side load gauges.
    pub load: Arc<MemberLoad>,
}

impl Member {
    /// A freshly joined member.
    pub fn new(addr: SocketAddr, state: MemberState, compositions: Vec<String>) -> Member {
        Member {
            id: NodeId::next(),
            addr,
            state,
            failures: 0,
            compositions,
            load: Arc::new(MemberLoad::default()),
        }
    }

    /// Whether the router may send new work here.
    pub fn routable(&self) -> bool {
        self.state == MemberState::Healthy
    }

    /// Whether this member advertises `composition`.
    pub fn advertises(&self, composition: &str) -> bool {
        self.compositions.iter().any(|name| name == composition)
    }

    /// The member as one entry of the membership JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("node", JsonValue::string(self.id.to_string())),
            ("addr", JsonValue::string(self.addr.to_string())),
            ("state", JsonValue::string(self.state.as_str())),
            ("failures", JsonValue::from(u64::from(self.failures))),
            (
                "in_flight",
                JsonValue::from(self.load.in_flight.load(Ordering::Relaxed)),
            ),
            (
                "queued_bytes",
                JsonValue::from(self.load.queued_bytes.load(Ordering::Relaxed)),
            ),
            ("circuit", JsonValue::string(self.load.circuit.state_str())),
            ("circuit_trips", JsonValue::from(self.load.circuit.trips())),
            (
                "retry_budget",
                JsonValue::from(self.load.retry_budget.balance()),
            ),
            (
                "compositions",
                JsonValue::array(
                    self.compositions
                        .iter()
                        .map(|name| JsonValue::string(name.clone())),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_score_weighs_queued_bytes() {
        let load = MemberLoad::default();
        assert_eq!(load.score(), 0);
        load.in_flight.store(3, Ordering::Relaxed);
        load.queued_bytes.store(64 * 1024, Ordering::Relaxed);
        assert_eq!(load.score(), 3 + 4);
    }

    #[test]
    fn retry_budget_caps_retries_to_a_fraction_of_successes() {
        let budget = RetryBudget::default();
        // Drain the cold-start allowance.
        let mut granted = 0;
        while budget.try_withdraw() {
            granted += 1;
        }
        assert_eq!(granted, RETRY_BUDGET_INITIAL / RETRY_BUDGET_SCALE);
        assert!(!budget.try_withdraw(), "an empty bucket refuses retries");
        // 10 successes fund exactly one retry.
        for _ in 0..RETRY_BUDGET_SCALE {
            budget.note_success();
        }
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
        // The bucket is capped: endless successes cannot bank endless
        // retries.
        for _ in 0..10 * RETRY_BUDGET_MAX {
            budget.note_success();
        }
        assert_eq!(budget.balance(), RETRY_BUDGET_MAX / RETRY_BUDGET_SCALE);
    }

    #[test]
    fn circuit_trips_on_error_rate_and_recovers_through_half_open() {
        let breaker = CircuitBreaker::default();
        assert!(breaker.allows());
        assert_eq!(breaker.state_str(), "closed");
        // A lone error on a quiet member does not trip.
        breaker.note_error();
        assert!(breaker.allows());
        // Enough errors to dominate the window trip it open.
        for _ in 0..CIRCUIT_MIN_EVENTS {
            breaker.note_error();
        }
        assert!(!breaker.allows());
        assert_eq!(breaker.state_str(), "open");
        assert_eq!(breaker.trips(), 1);
        // Errors while open change nothing.
        breaker.note_error();
        assert!(!breaker.allows());
        // A successful health probe grants a half-open trial...
        breaker.note_probe_success();
        assert!(breaker.allows());
        assert_eq!(breaker.state_str(), "half_open");
        // ...and a failed trial slams it shut again.
        breaker.note_error();
        assert!(!breaker.allows());
        // Second recovery: probe, then a delivered response re-closes.
        breaker.note_probe_success();
        breaker.note_success();
        assert_eq!(breaker.state_str(), "closed");
        assert!(breaker.allows());
        assert_eq!(breaker.trips(), 1, "half-open failures do not re-count");
    }

    #[test]
    fn circuit_survives_errors_when_successes_dominate() {
        let breaker = CircuitBreaker::default();
        for _ in 0..100 {
            breaker.note_success();
        }
        for _ in 0..30 {
            breaker.note_error();
        }
        assert!(breaker.allows(), "30% errors must not trip a 50% breaker");
        // Decay ages both sides; the ratio (and the closed state) holds.
        breaker.decay();
        assert!(breaker.allows());
    }

    #[test]
    fn member_json_carries_identity_and_state() {
        let member = Member::new(
            "127.0.0.1:9000".parse().unwrap(),
            MemberState::Healthy,
            vec!["EchoComp".to_string()],
        );
        assert!(member.routable());
        assert!(member.advertises("EchoComp"));
        assert!(!member.advertises("Other"));
        let json = member.to_json().to_json_string();
        assert!(json.contains("\"state\":\"healthy\""));
        assert!(json.contains("EchoComp"));
    }
}
