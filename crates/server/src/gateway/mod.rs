//! Cluster gateway: one front door routing real traffic across many
//! worker nodes.
//!
//! A Dandelion deployment grows past one worker by putting a **gateway**
//! in front of N member nodes, each running the ordinary single-node
//! server and speaking the existing v1 HTTP protocol. The gateway is the
//! same `dandelion-server` binary in a different role
//! ([`Server::start_gateway`](crate::Server::start_gateway)): the same
//! epoll event loops, connection state machines and zero-copy rope writes
//! — but instead of a local [`Frontend`](dandelion_core::Frontend) the
//! loops consult a [`Router`], and a second endpoint type appears in each
//! loop's slab: pooled, pipelined upstream connections to the members.
//!
//! ```text
//!                      ┌──────────────────────────┐
//!   clients ──────────▶│  gateway (dandelion-serve │
//!   (keep-alive,       │   --gateway)              │
//!    pipelined)        │  · membership table       │
//!                      │  · health probes          │
//!                      │  · load-aware routing     │
//!                      │  · async response proxy   │
//!                      └───┬──────────┬─────────┬──┘
//!                          │ v1 HTTP  │         │
//!                     ┌────▼───┐ ┌────▼───┐ ┌───▼────┐
//!                     │ member │ │ member │ │ member │
//!                     │ node-1 │ │ node-2 │ │ node-3 │
//!                     └────────┘ └────────┘ └────────┘
//! ```
//!
//! What the subsystem provides:
//!
//! * **Membership** ([`membership`]): nodes join by announcing their
//!   address (`POST /v1/cluster/members`, or `dandelion-serve --join`);
//!   the gateway probes them and records the compositions they advertise.
//!   Advertisements refresh on every health probe, so registering a new
//!   composition on a member re-advertises automatically.
//! * **Health checking**: a background thread probes each member's
//!   `GET /v1/stats` on a fixed cadence. Consecutive failures eject the
//!   member from rotation; a succeeding probe re-admits it. Data-path
//!   failures (refused connects, dead upstream connections) count toward
//!   the same threshold.
//! * **Load-aware routing** ([`Router`]): invocations prefer a stable
//!   member per composition (affinity keeps warm state concentrated) but
//!   spill to the least-loaded member when the preferred one's in-flight
//!   count and queued bytes run away. Status polls follow the member that
//!   accepted the submission.
//! * **Async response proxying**: a forwarded request parks a response
//!   slot in the client connection — never a thread — while the exchange
//!   rides a pooled upstream connection owned by the same event loop.
//!   Member responses are decoded zero-copy and their body buffers are
//!   delivered to the client by reference ([`proxy_response`] keeps the
//!   `Arc` identity).
//! * **Draining** (`POST /v1/cluster/drain/{node}`): a member marked
//!   draining receives no new work, keeps answering polls, and leaves the
//!   table once its in-flight work settles — the rolling-restart
//!   primitive.

pub mod membership;
mod router;
pub(crate) mod upstream;

pub use membership::{Member, MemberLoad, MemberState};
pub use router::{proxy_request, proxy_response, GatewayConfig, Router};

pub(crate) use router::{upstream_failed_response, ForwardPlan, GatewayReply};
