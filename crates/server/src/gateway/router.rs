//! The gateway router: one front door for a cluster of worker nodes.
//!
//! The router owns the membership table and decides, per request, whether
//! the gateway answers locally (cluster control plane, stats, health) or
//! forwards to a member over the v1 HTTP protocol. Forwarding is planned
//! here but executed by the event loops: the router returns a
//! [`ForwardPlan`] carrying the serialized request (body attached by
//! reference) and the chosen member, and the loop pipelines it onto a
//! pooled upstream connection.
//!
//! Routing is load-aware with composition affinity: invocations of a
//! composition prefer a stable member (FNV hash of the name over the
//! advertisers) so warm state — registered functions, cached contexts —
//! concentrates, but a preferred member whose gateway-side load score runs
//! far past the cluster minimum loses the request to the least-loaded
//! member. Status polls follow the member that accepted the submission
//! through a bounded invocation-owner map.
//!
//! A background health thread probes every member's `GET /v1/stats` on a
//! fixed cadence, refreshes its advertised compositions (changes
//! re-advertise automatically), ejects members after consecutive failures,
//! re-admits them when probes succeed again, and removes draining members
//! once their in-flight work settles.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::time::Duration;

use dandelion_common::{failpoint, InvocationId, JsonValue, NodeId, Rope, SharedBytes};
use dandelion_core::composition_affinity_hash;
use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode, Uri};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::client::HttpClientConnection;
use crate::gateway::membership::{Member, MemberLoad, MemberState};

/// Invocation-owner entries retained for poll routing; the oldest entries
/// are evicted first once the map is full.
const INVOCATION_ROUTE_CAPACITY: usize = 64 * 1024;

/// How much worse (in load-score terms) the affinity-preferred member may
/// be before the router abandons affinity for the least-loaded member:
/// past `2 * min + SLACK` the preference loses.
const AFFINITY_LOAD_SLACK: usize = 16;

/// Tunables of the gateway router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Cadence of the per-member health probe (`GET /v1/stats`).
    pub probe_interval: Duration,
    /// Socket timeout of one probe or control-plane call to a member.
    pub probe_timeout: Duration,
    /// Timeout of one upstream `connect` on the data path (the loops call
    /// this inline, so it must stay short).
    pub connect_timeout: Duration,
    /// Consecutive probe/data-path failures before a member is ejected.
    pub fail_threshold: u32,
    /// Pipelined upstream connections each event loop keeps per member.
    pub upstreams_per_loop: usize,
    /// Deadline for an upstream with pending responses to make progress;
    /// past it the connection is failed and its exchanges answered `502`.
    pub upstream_timeout: Duration,
    /// Members tried (connect + plan) before a forward gives up with `502`.
    pub max_forward_attempts: u32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            connect_timeout: Duration::from_millis(250),
            fail_threshold: 3,
            upstreams_per_loop: 2,
            upstream_timeout: Duration::from_secs(30),
            max_forward_attempts: 3,
        }
    }
}

/// A forward decision: which member gets the request, and the request
/// already serialized for the wire (body by reference — the gateway never
/// copies payloads between the two sockets).
pub(crate) struct ForwardPlan {
    /// The chosen member.
    pub node: NodeId,
    /// Its v1 HTTP listener.
    pub addr: SocketAddr,
    /// The member's gateway-side load gauges (shared, lock-free updates).
    pub load: Arc<MemberLoad>,
    /// The serialized request.
    pub rope: Rope,
    /// Wire size of `rope`, counted against the member's queued bytes.
    pub bytes: usize,
    /// Whether a `202` response carries an invocation id to remember for
    /// owner-routed polls.
    pub track_submit: bool,
    /// The composition being invoked, when re-planning may use affinity.
    pub composition: Option<String>,
    /// Members already tried for this request (connect failures); replans
    /// exclude them.
    pub tried: Vec<NodeId>,
}

/// What the router decided about one request.
pub(crate) enum GatewayReply {
    /// The gateway answers this itself.
    Respond(HttpResponse),
    /// Forward to a member; the event loop executes the plan.
    Forward(ForwardPlan),
    /// A blocking control-plane operation (member probes, broadcasts, drain
    /// relays): the connection parks a response slot and the router's
    /// control thread posts the completion back — loop threads never make
    /// blocking member calls.
    Control(ControlOp),
}

/// One deferred control-plane operation, executed on the control thread.
pub(crate) enum ControlOp {
    /// `POST /v1/compositions`: broadcast the registration to every member.
    RegisterComposition {
        /// The DSL body, by reference.
        body: SharedBytes,
    },
    /// `POST /v1/cluster/members`: probe and admit a joining member.
    Join {
        /// The `{"addr": ...}` JSON body.
        body: SharedBytes,
    },
    /// `POST /v1/cluster/drain/{node}`: mark draining and relay the signal.
    Drain {
        /// The node id path segment, still unparsed.
        node: String,
    },
}

/// A control-plane operation paired with the completion that delivers its
/// response back to the owning event loop.
type ControlJob = (ControlOp, Box<dyn FnOnce(HttpResponse) + Send>);

/// Bounded invocation-id → owner map for poll routing. Evicted ids are
/// remembered (in a second bounded FIFO) so a poll for one answers a
/// structured `410 result_evicted` instead of being misrouted to an
/// arbitrary member that never heard of it.
struct InvocationOwners {
    owners: HashMap<InvocationId, NodeId>,
    order: VecDeque<InvocationId>,
    evicted: HashSet<InvocationId>,
    evicted_order: VecDeque<InvocationId>,
}

impl InvocationOwners {
    fn record(&mut self, id: InvocationId, node: NodeId) {
        // A resubmitted id is live again: forget any earlier eviction.
        if self.evicted.remove(&id) {
            self.evicted_order.retain(|old| *old != id);
        }
        if self.owners.insert(id, node).is_none() {
            self.order.push_back(id);
            while self.order.len() > INVOCATION_ROUTE_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.owners.remove(&evicted);
                    if self.evicted.insert(evicted) {
                        self.evicted_order.push_back(evicted);
                        while self.evicted_order.len() > INVOCATION_ROUTE_CAPACITY {
                            if let Some(forgotten) = self.evicted_order.pop_front() {
                                self.evicted.remove(&forgotten);
                            }
                        }
                    }
                }
            }
        }
    }

    fn was_evicted(&self, id: InvocationId) -> bool {
        self.evicted.contains(&id)
    }
}

/// Gateway-level counters surfaced in `GET /v1/stats`.
#[derive(Debug, Default)]
struct GatewayStats {
    /// Requests forwarded to members.
    proxied: AtomicU64,
    /// Forwards or upstream exchanges that failed (`502` to the client).
    upstream_errors: AtomicU64,
    /// Forwards replanned onto another member after a connect failure.
    retries: AtomicU64,
    /// Members ejected after consecutive failures.
    ejections: AtomicU64,
    /// Ejected members re-admitted by a succeeding probe.
    readmissions: AtomicU64,
    /// Draining members removed once their in-flight work settled.
    drained_out: AtomicU64,
    /// Polls for invocation ids that fell out of the bounded owner map
    /// (answered `410 result_evicted`).
    evicted_polls: AtomicU64,
    /// Replans denied because the failed member's retry budget was empty.
    budget_denials: AtomicU64,
}

/// The cluster gateway's routing brain (see the module docs).
pub struct Router {
    config: GatewayConfig,
    members: RwLock<Vec<Member>>,
    owners: Mutex<InvocationOwners>,
    stats: GatewayStats,
    /// The serving layer's stats document, merged into `GET /v1/stats`.
    server_stats: Mutex<Option<Arc<dyn Fn() -> JsonValue + Send + Sync>>>,
    stopping: AtomicBool,
    /// Wakes the health thread out of its probe-interval wait so shutdown
    /// never has to sit out the remainder of a long cadence.
    health_stop: Arc<(Mutex<bool>, Condvar)>,
    health_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Feeds the control thread; `None` once shut down (late submissions
    /// answer `503` instead of blocking).
    control_tx: Mutex<Option<mpsc::Sender<ControlJob>>>,
    control_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Router {
    /// Creates the router and starts its health and control threads. Both
    /// hold weak references, so dropping the last `Arc<Router>` (or calling
    /// [`Router::shutdown`]) ends them.
    pub fn start(config: GatewayConfig) -> Arc<Router> {
        failpoint::init_from_env();
        let router = Arc::new(Router {
            config,
            members: RwLock::new(Vec::new()),
            owners: Mutex::new(InvocationOwners {
                owners: HashMap::new(),
                order: VecDeque::new(),
                evicted: HashSet::new(),
                evicted_order: VecDeque::new(),
            }),
            stats: GatewayStats::default(),
            server_stats: Mutex::new(None),
            stopping: AtomicBool::new(false),
            health_stop: Arc::new((Mutex::new(false), Condvar::new())),
            health_thread: Mutex::new(None),
            control_tx: Mutex::new(None),
            control_thread: Mutex::new(None),
        });
        let weak: Weak<Router> = Arc::downgrade(&router);
        let interval = router.config.probe_interval;
        let stop = Arc::clone(&router.health_stop);
        let handle = std::thread::Builder::new()
            .name("dandelion-gateway-health".to_string())
            .spawn(move || loop {
                {
                    let (stopped, wake) = &*stop;
                    let mut stopped = stopped.lock();
                    if !*stopped {
                        wake.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                }
                let Some(router) = weak.upgrade() else {
                    return;
                };
                if router.stopping.load(Ordering::Acquire) {
                    return;
                }
                router.probe_members();
            })
            .expect("spawning the gateway health thread");
        *router.health_thread.lock() = Some(handle);
        // The control thread serializes the blocking member calls (join
        // probes, registration broadcasts, drain relays) that must never
        // run on an event loop; it exits when the sender side is dropped
        // (shutdown or the router itself going away).
        let (control_tx, control_rx) = mpsc::channel::<ControlJob>();
        let weak: Weak<Router> = Arc::downgrade(&router);
        let handle = std::thread::Builder::new()
            .name("dandelion-gateway-control".to_string())
            .spawn(move || {
                while let Ok((op, complete)) = control_rx.recv() {
                    let Some(router) = weak.upgrade() else {
                        return;
                    };
                    complete(router.execute_control(op));
                }
            })
            .expect("spawning the gateway control thread");
        *router.control_tx.lock() = Some(control_tx);
        *router.control_thread.lock() = Some(handle);
        router
    }

    /// The router's configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Stops the health and control threads. Forwarding keeps working (the
    /// server owns the data path); health state is frozen and late
    /// control-plane requests answer `503`.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::Release);
        self.signal_health_stop();
        // Dropping the sender ends the control thread's receive loop.
        self.control_tx.lock().take();
        if let Some(handle) = self.health_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.control_thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Kicks the health thread out of its interval wait so it observes the
    /// stop flag now instead of after the remainder of the cadence.
    fn signal_health_stop(&self) {
        let (stopped, wake) = &*self.health_stop;
        *stopped.lock() = true;
        wake.notify_all();
    }

    /// Installs the serving layer's stats source (set by the server when it
    /// starts in gateway mode).
    pub(crate) fn set_server_stats(&self, source: Arc<dyn Fn() -> JsonValue + Send + Sync>) {
        *self.server_stats.lock() = Some(source);
    }

    /// Hands a blocking control-plane operation to the control thread;
    /// `complete` runs there with the response. A router that is already
    /// shut down answers `503` immediately (on the caller's thread — the
    /// response is in hand, nothing blocks).
    pub(crate) fn submit_control(
        &self,
        op: ControlOp,
        complete: Box<dyn FnOnce(HttpResponse) + Send>,
    ) {
        let rejected = {
            let sender = self.control_tx.lock();
            match sender.as_ref() {
                Some(tx) => tx.send((op, complete)).err().map(|failed| failed.0 .1),
                None => Some(complete),
            }
        };
        if let Some(complete) = rejected {
            complete(gateway_error(
                StatusCode::SERVICE_UNAVAILABLE,
                "gateway_stopping",
                "the gateway control plane is shut down",
                true,
            ));
        }
    }

    /// Executes one control-plane operation (control thread only).
    fn execute_control(&self, op: ControlOp) -> HttpResponse {
        match op {
            ControlOp::RegisterComposition { body } => self.register_composition(&body),
            ControlOp::Join { body } => self.join_request(&body),
            ControlOp::Drain { node } => self.drain_request(&node),
        }
    }

    // ------------------------------------------------------------------
    // Membership control plane
    // ------------------------------------------------------------------

    /// Joins a member: probes its `/v1/stats` (liveness) and
    /// `/v1/compositions` (advertisement), then adds it to the table.
    pub fn join(&self, addr: SocketAddr) -> Result<NodeId, String> {
        probe_stats(addr, self.config.probe_timeout)
            .map_err(|error| format!("member {addr} failed its join probe: {error}"))?;
        let compositions = fetch_compositions(addr, self.config.probe_timeout)
            .map_err(|error| format!("member {addr} did not list compositions: {error}"))?;
        let mut members = self.members.write();
        // Re-joining an address resets it instead of duplicating the row
        // (a restarted member announces itself again).
        if let Some(existing) = members.iter_mut().find(|member| member.addr == addr) {
            existing.state = MemberState::Healthy;
            existing.failures = 0;
            existing.compositions = compositions;
            return Ok(existing.id);
        }
        let member = Member::new(addr, MemberState::Healthy, compositions);
        let id = member.id;
        members.push(member);
        Ok(id)
    }

    /// Marks a member draining: no new work; the health thread removes it
    /// once its in-flight count reaches zero. Returns the member's address
    /// so the caller can relay the drain signal to the node itself.
    pub fn drain(&self, node: NodeId) -> Option<SocketAddr> {
        let mut members = self.members.write();
        let member = members.iter_mut().find(|member| member.id == node)?;
        member.state = MemberState::Draining;
        Some(member.addr)
    }

    /// Members currently in the table, as `(id, addr, state)` rows.
    pub fn member_rows(&self) -> Vec<(NodeId, SocketAddr, &'static str)> {
        self.members
            .read()
            .iter()
            .map(|member| (member.id, member.addr, member.state.as_str()))
            .collect()
    }

    /// One health pass over every member (also exposed for tests that do
    /// not want to wait for the probe cadence).
    pub fn probe_members(&self) {
        let snapshot: Vec<(NodeId, SocketAddr)> = self
            .members
            .read()
            .iter()
            .map(|member| (member.id, member.addr))
            .collect();
        for (node, addr) in snapshot {
            let outcome = if failpoint::enabled() && failpoint::check("gateway/probe").is_some() {
                Err("injected by failpoint gateway/probe".to_string())
            } else {
                fetch_compositions(addr, self.config.probe_timeout)
            };
            let mut members = self.members.write();
            let Some(member) = members.iter_mut().find(|member| member.id == node) else {
                continue;
            };
            match outcome {
                Ok(compositions) => {
                    member.failures = 0;
                    member.compositions = compositions;
                    // A reachable member may re-enter rotation: an Open
                    // circuit goes HalfOpen (the next data-path success
                    // closes it), and the error window decays so old
                    // failures age out instead of tripping it again.
                    member.load.circuit.note_probe_success();
                    member.load.circuit.decay();
                    match member.state {
                        MemberState::Ejected => {
                            // Probes succeed again: re-admit.
                            member.state = MemberState::Healthy;
                            self.stats.readmissions.fetch_add(1, Ordering::Relaxed);
                        }
                        MemberState::Draining => {
                            if member.load.in_flight.load(Ordering::Relaxed) == 0 {
                                self.stats.drained_out.fetch_add(1, Ordering::Relaxed);
                                members.retain(|member| member.id != node);
                            }
                        }
                        MemberState::Healthy => {}
                    }
                }
                Err(_) => {
                    if member.state == MemberState::Draining {
                        // The normal rolling restart kills the process once
                        // its work finishes, so a draining member that stops
                        // answering probes is gone — waiting for a successful
                        // probe would leave a ghost "draining" row forever.
                        // Remove it once it looks done, or after the same
                        // consecutive-failure threshold that ejects healthy
                        // members.
                        member.failures = member.failures.saturating_add(1);
                        let gone = member.load.in_flight.load(Ordering::Relaxed) == 0
                            || member.failures >= self.config.fail_threshold;
                        if gone {
                            self.stats.drained_out.fetch_add(1, Ordering::Relaxed);
                            members.retain(|member| member.id != node);
                        }
                    } else {
                        self.note_member_failure_locked(member);
                    }
                }
            }
        }
    }

    /// Records a data-path failure against a member (connect refused, dead
    /// connection); counts toward the same ejection threshold as probes.
    pub(crate) fn note_upstream_failure(&self, node: NodeId) {
        let mut members = self.members.write();
        if let Some(member) = members.iter_mut().find(|member| member.id == node) {
            self.note_member_failure_locked(member);
        }
    }

    fn note_member_failure_locked(&self, member: &mut Member) {
        member.failures = member.failures.saturating_add(1);
        member.load.circuit.note_error();
        if member.state == MemberState::Healthy && member.failures >= self.config.fail_threshold {
            member.state = MemberState::Ejected;
            self.stats.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Data-path bookkeeping (called by the event loops)
    // ------------------------------------------------------------------

    /// An exchange left for a member: count it against the load gauges.
    pub(crate) fn note_forward(&self, load: &MemberLoad, bytes: usize) {
        load.in_flight.fetch_add(1, Ordering::Relaxed);
        load.queued_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.proxied.fetch_add(1, Ordering::Relaxed);
    }

    /// An exchange settled (response delivered or failed): release it from
    /// the load gauges.
    pub(crate) fn note_settled(&self, load: &MemberLoad, bytes: usize) {
        load.in_flight.fetch_sub(1, Ordering::Relaxed);
        load.queued_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// An exchange failed after it was counted: `502` went to the client.
    pub(crate) fn note_upstream_error(&self) {
        self.stats.upstream_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A member answered an exchange: feed the retry budget (successes
    /// bank future retries) and the circuit breaker (a data-path success
    /// closes a half-open circuit).
    pub(crate) fn note_upstream_success(&self, load: &MemberLoad) {
        load.retry_budget.note_success();
        load.circuit.note_success();
    }

    /// Remembers which member accepted a submitted invocation, so polls for
    /// its id route to the node that holds the result.
    pub(crate) fn record_invocation(&self, id: InvocationId, node: NodeId) {
        self.owners.lock().record(id, node);
    }

    // ------------------------------------------------------------------
    // Request routing
    // ------------------------------------------------------------------

    /// Routes one parsed request: local control-plane answers are returned
    /// directly, proxied requests come back as a [`ForwardPlan`].
    pub(crate) fn dispatch(&self, request: &HttpRequest) -> GatewayReply {
        let Some(uri) = Uri::parse(&request.target) else {
            return GatewayReply::Respond(gateway_error(
                StatusCode::BAD_REQUEST,
                "invalid_request",
                &format!("unparseable request target `{}`", request.target),
                false,
            ));
        };
        if uri.query.is_some() {
            return GatewayReply::Respond(gateway_error(
                StatusCode::BAD_REQUEST,
                "invalid_request",
                "query strings are not accepted",
                false,
            ));
        }
        let segments: Vec<&str> = uri.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method, segments.as_slice()) {
            (Method::Get, ["healthz"]) => GatewayReply::Respond(HttpResponse::ok(b"ok".to_vec())),
            (Method::Get, ["v1", "stats"]) => GatewayReply::Respond(self.stats_response()),
            (Method::Get, ["v1", "compositions"]) => {
                GatewayReply::Respond(self.list_compositions())
            }
            // The mutating control plane makes blocking member calls
            // (probes, broadcasts, relays): deferred to the control thread
            // so the event loop never stalls behind them.
            (Method::Post, ["v1", "compositions"]) => {
                GatewayReply::Control(ControlOp::RegisterComposition {
                    body: request.body.clone(),
                })
            }
            (Method::Get, ["v1", "cluster", "members"]) => {
                GatewayReply::Respond(self.members_response(StatusCode::OK))
            }
            (Method::Post, ["v1", "cluster", "members"]) => {
                GatewayReply::Control(ControlOp::Join {
                    body: request.body.clone(),
                })
            }
            (Method::Post, ["v1", "cluster", "drain", node]) => {
                GatewayReply::Control(ControlOp::Drain {
                    node: node.to_string(),
                })
            }
            (Method::Post, ["v1", "invoke", name]) if !name.is_empty() => {
                self.plan_invocation(request, name, false)
            }
            (Method::Post, ["v1", "invocations", name]) if !name.is_empty() => {
                self.plan_invocation(request, name, true)
            }
            (Method::Get, ["v1", "invocations", id]) if !id.is_empty() => {
                self.plan_poll(request, id)
            }
            _ => GatewayReply::Respond(gateway_error(
                StatusCode::NOT_FOUND,
                "not_found",
                &format!("endpoint `{}` not found on the gateway", uri.path),
                false,
            )),
        }
    }

    /// Plans the forward of an invocation (`invoke` or `submit`) by
    /// composition affinity with a load-aware escape hatch.
    fn plan_invocation(
        &self,
        request: &HttpRequest,
        composition: &str,
        track_submit: bool,
    ) -> GatewayReply {
        match self.pick_member(Some(composition), &[]) {
            Some((node, addr, load)) => {
                let rope = proxy_request(request).to_rope();
                let bytes = rope.len();
                GatewayReply::Forward(ForwardPlan {
                    node,
                    addr,
                    load,
                    rope,
                    bytes,
                    track_submit,
                    composition: Some(composition.to_string()),
                    tried: Vec::new(),
                })
            }
            None => GatewayReply::Respond(no_members_response()),
        }
    }

    /// Plans the forward of a status poll: the member that accepted the
    /// submission owns the result, so the owner map wins when it can.
    fn plan_poll(&self, request: &HttpRequest, id_text: &str) -> GatewayReply {
        let id = InvocationId::parse(id_text);
        let owner = id.and_then(|id| {
            let owners = self.owners.lock();
            if owners.was_evicted(id) {
                return Some(Err(()));
            }
            owners.owners.get(&id).copied().map(Ok)
        });
        let owner = match owner {
            // The id was tracked but fell out of the bounded owner map:
            // routing the poll to an arbitrary member would produce a
            // misleading `404`, so answer `410` and say why.
            Some(Err(())) => {
                self.stats.evicted_polls.fetch_add(1, Ordering::Relaxed);
                return GatewayReply::Respond(gateway_error(
                    StatusCode(410),
                    "result_evicted",
                    &format!(
                        "the gateway no longer remembers which member holds `{id_text}`; \
                         its routing entry was evicted from the bounded owner map"
                    ),
                    false,
                ));
            }
            Some(Ok(node)) => Some(node),
            None => None,
        };
        let target = owner
            .and_then(|node| self.member_for_poll(node))
            .or_else(|| self.pick_member(None, &[]));
        match target {
            Some((node, addr, load)) => {
                let rope = proxy_request(request).to_rope();
                let bytes = rope.len();
                GatewayReply::Forward(ForwardPlan {
                    node,
                    addr,
                    load,
                    rope,
                    bytes,
                    track_submit: false,
                    composition: None,
                    tried: Vec::new(),
                })
            }
            None => GatewayReply::Respond(no_members_response()),
        }
    }

    /// Replans a forward whose member could not be reached. The failed
    /// members are excluded; `None` means the request is out of options
    /// (the caller answers `502`).
    ///
    /// Retries are budgeted, not merely counted: each one withdraws from
    /// the failed member's token bucket, which only successes refill, so
    /// a cluster-wide outage cannot amplify client load into a retry
    /// storm. `max_forward_attempts` stays as the per-request hard
    /// ceiling on top of the budget.
    pub(crate) fn replan(&self, mut plan: ForwardPlan) -> Option<ForwardPlan> {
        if plan.tried.len() >= self.config.max_forward_attempts as usize {
            return None;
        }
        if !plan.load.retry_budget.try_withdraw() {
            self.stats.budget_denials.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let (node, addr, load) = self.pick_member(plan.composition.as_deref(), &plan.tried)?;
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
        plan.node = node;
        plan.addr = addr;
        plan.load = load;
        Some(plan)
    }

    /// Re-plans an exchange that was queued behind a dead connection but
    /// never reached the wire: any routable member except the dead one may
    /// take it (affinity is not reconstructed — correctness over warmth).
    pub(crate) fn plan_fallback(
        &self,
        exclude: NodeId,
        rope: Rope,
        bytes: usize,
        track_submit: bool,
    ) -> Option<ForwardPlan> {
        let tried = vec![exclude];
        let (node, addr, load) = self.pick_member(None, &tried)?;
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
        Some(ForwardPlan {
            node,
            addr,
            load,
            rope,
            bytes,
            track_submit,
            composition: None,
            tried,
        })
    }

    /// Picks the member for a new exchange: routable members advertising
    /// the composition (all routable members when none does), the affinity
    /// pick unless its load ran away, excluding `tried`.
    fn pick_member(
        &self,
        composition: Option<&str>,
        tried: &[NodeId],
    ) -> Option<(NodeId, SocketAddr, Arc<MemberLoad>)> {
        let members = self.members.read();
        let eligible: Vec<&Member> = {
            // An Open circuit takes the member out of consideration even
            // while it is still nominally Healthy (the breaker trips on
            // error *rate* before consecutive failures eject); HalfOpen
            // admits it again so a real exchange can close the circuit.
            let routable = members.iter().filter(|member| {
                member.routable() && member.load.circuit.allows() && !tried.contains(&member.id)
            });
            match composition {
                Some(name) => {
                    let advertisers: Vec<&Member> =
                        routable.clone().filter(|m| m.advertises(name)).collect();
                    if advertisers.is_empty() {
                        routable.collect()
                    } else {
                        advertisers
                    }
                }
                None => routable.collect(),
            }
        };
        if eligible.is_empty() {
            return None;
        }
        let min_score = eligible
            .iter()
            .map(|member| member.load.score())
            .min()
            .unwrap_or(0);
        let preferred = composition
            .map(|name| {
                let index = (composition_affinity_hash(name) % eligible.len() as u64) as usize;
                eligible[index]
            })
            .filter(|member| member.load.score() <= 2 * min_score + AFFINITY_LOAD_SLACK);
        let chosen = match preferred {
            Some(member) => member,
            None => eligible
                .iter()
                .min_by_key(|member| member.load.score())
                .copied()?,
        };
        Some((chosen.id, chosen.addr, Arc::clone(&chosen.load)))
    }

    /// The member a poll for `node` should go to: the owner while it is
    /// still present and not ejected (a draining member still answers
    /// polls — refusing *new* invocations is the worker's business).
    fn member_for_poll(&self, node: NodeId) -> Option<(NodeId, SocketAddr, Arc<MemberLoad>)> {
        let members = self.members.read();
        members
            .iter()
            .find(|member| member.id == node && member.state != MemberState::Ejected)
            .map(|member| (member.id, member.addr, Arc::clone(&member.load)))
    }

    // ------------------------------------------------------------------
    // Local responses
    // ------------------------------------------------------------------

    fn stats_response(&self) -> HttpResponse {
        let members = self.members.read();
        let mut pairs: Vec<(String, JsonValue)> = vec![
            ("role".into(), JsonValue::string("gateway")),
            (
                "members".into(),
                JsonValue::array(members.iter().map(Member::to_json)),
            ),
            (
                "proxied".into(),
                JsonValue::from(self.stats.proxied.load(Ordering::Relaxed)),
            ),
            (
                "upstream_errors".into(),
                JsonValue::from(self.stats.upstream_errors.load(Ordering::Relaxed)),
            ),
            (
                "retries".into(),
                JsonValue::from(self.stats.retries.load(Ordering::Relaxed)),
            ),
            (
                "ejections".into(),
                JsonValue::from(self.stats.ejections.load(Ordering::Relaxed)),
            ),
            (
                "readmissions".into(),
                JsonValue::from(self.stats.readmissions.load(Ordering::Relaxed)),
            ),
            (
                "drained".into(),
                JsonValue::from(self.stats.drained_out.load(Ordering::Relaxed)),
            ),
            (
                "evicted_polls".into(),
                JsonValue::from(self.stats.evicted_polls.load(Ordering::Relaxed)),
            ),
            (
                "budget_denials".into(),
                JsonValue::from(self.stats.budget_denials.load(Ordering::Relaxed)),
            ),
        ];
        drop(members);
        if let Some(source) = self.server_stats.lock().as_ref() {
            pairs.push(("server".into(), source()));
        }
        if let Some(failpoints) = failpoint::stats_json() {
            pairs.push(("failpoints".into(), failpoints));
        }
        json_response(StatusCode::OK, &JsonValue::Object(pairs))
    }

    /// `GET /v1/compositions` on the gateway: the union of what the
    /// members advertise.
    fn list_compositions(&self) -> HttpResponse {
        let members = self.members.read();
        let mut names: Vec<&str> = members
            .iter()
            .flat_map(|member| member.compositions.iter().map(String::as_str))
            .collect();
        names.sort_unstable();
        names.dedup();
        json_response(
            StatusCode::OK,
            &JsonValue::object([(
                "compositions",
                JsonValue::array(names.into_iter().map(JsonValue::string)),
            )]),
        )
    }

    /// `POST /v1/compositions` on the gateway: broadcast the registration
    /// to every routable member (blocking — control thread only), so any
    /// of them can serve the composition afterwards.
    fn register_composition(&self, body: &[u8]) -> HttpResponse {
        let targets: Vec<(NodeId, SocketAddr)> = self
            .members
            .read()
            .iter()
            .filter(|member| member.routable())
            .map(|member| (member.id, member.addr))
            .collect();
        if targets.is_empty() {
            return no_members_response();
        }
        let mut name: Option<String> = None;
        let mut failures: Vec<String> = Vec::new();
        for (node, addr) in &targets {
            match register_on_member(*addr, body, self.config.probe_timeout) {
                Ok(registered) => name = Some(registered),
                Err(error) => failures.push(format!("{node}: {error}")),
            }
        }
        let Some(name) = name else {
            return gateway_error(
                StatusCode(502),
                "upstream_failed",
                &format!(
                    "no member accepted the composition: {}",
                    failures.join("; ")
                ),
                true,
            );
        };
        // Advertise immediately instead of waiting a probe interval.
        {
            let mut members = self.members.write();
            for member in members.iter_mut() {
                if targets.iter().any(|(node, _)| *node == member.id) && !member.advertises(&name) {
                    member.compositions.push(name.clone());
                }
            }
        }
        if failures.is_empty() {
            json_response(
                StatusCode::CREATED,
                &JsonValue::object([
                    ("name", JsonValue::string(name)),
                    ("nodes", JsonValue::from(targets.len())),
                ]),
            )
        } else {
            gateway_error(
                StatusCode(502),
                "partial_registration",
                &format!(
                    "composition `{name}` registered on {} of {} members; failed: {}",
                    targets.len() - failures.len(),
                    targets.len(),
                    failures.join("; ")
                ),
                true,
            )
        }
    }

    fn members_response(&self, status: StatusCode) -> HttpResponse {
        let members = self.members.read();
        json_response(
            status,
            &JsonValue::object([(
                "members",
                JsonValue::array(members.iter().map(Member::to_json)),
            )]),
        )
    }

    /// `POST /v1/cluster/members` with body `{"addr": "host:port"}`: a
    /// member announcing itself (what `dandelion-serve --join` sends).
    /// Blocking (join probes the candidate) — control thread only.
    fn join_request(&self, body: &[u8]) -> HttpResponse {
        let body = String::from_utf8_lossy(body).to_string();
        let addr = JsonValue::parse(&body)
            .ok()
            .and_then(|document| {
                document
                    .get("addr")
                    .and_then(JsonValue::as_str)
                    .map(String::from)
            })
            .and_then(|text| text.parse::<SocketAddr>().ok());
        let Some(addr) = addr else {
            return gateway_error(
                StatusCode::BAD_REQUEST,
                "invalid_request",
                "body must be a JSON object with an `addr` of the form `host:port`",
                false,
            );
        };
        match self.join(addr) {
            Ok(node) => json_response(
                StatusCode::CREATED,
                &JsonValue::object([
                    ("node", JsonValue::string(node.to_string())),
                    ("addr", JsonValue::string(addr.to_string())),
                ]),
            ),
            Err(problem) => gateway_error(StatusCode(502), "join_failed", &problem, true),
        }
    }

    /// `POST /v1/cluster/drain/{node}`: take a member out of rotation for a
    /// rolling restart. The drain signal is relayed to the node itself
    /// (best-effort) so it refuses work arriving around the gateway too.
    /// Blocking (the relay is an HTTP call) — control thread only.
    fn drain_request(&self, node_text: &str) -> HttpResponse {
        let Some(node) = NodeId::parse(node_text) else {
            return gateway_error(
                StatusCode::BAD_REQUEST,
                "invalid_request",
                &format!("malformed node id `{node_text}`"),
                false,
            );
        };
        let Some(addr) = self.drain(node) else {
            return gateway_error(
                StatusCode::NOT_FOUND,
                "not_found",
                &format!("no member `{node}` in the cluster"),
                false,
            );
        };
        let relayed = relay_drain(addr, self.config.probe_timeout).is_ok();
        json_response(
            StatusCode::ACCEPTED,
            &JsonValue::object([
                ("node", JsonValue::string(node.to_string())),
                ("state", JsonValue::string("draining")),
                ("relayed", JsonValue::from(relayed)),
            ]),
        )
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
        self.signal_health_stop();
        // The health thread holds only a weak reference and is woken out
        // of its wait above; dropping `control_tx` (as a field) ends the
        // control thread's receive loop. Joining here would deadlock a
        // drop from one of the threads themselves, so just signal.
    }
}

// ----------------------------------------------------------------------
// Proxy transforms (public: the zero-copy tests assert on them)
// ----------------------------------------------------------------------

/// Prepares a client request for the upstream wire: hop-by-hop connection
/// negotiation is the gateway's business on each side, so the client's
/// `Connection` header is stripped (upstream connections are always
/// keep-alive). The body rides along by reference.
pub fn proxy_request(request: &HttpRequest) -> HttpRequest {
    let mut upstream = request.clone();
    upstream.headers.remove("connection");
    upstream
}

/// Prepares a member's response for the client: the member's `Connection`
/// header is replaced by the gateway's own negotiation, and the answering
/// node is surfaced as `X-Dandelion-Node`. The body buffer is reused as-is
/// — the integration tests assert the `Arc` identity survives this hop.
pub fn proxy_response(mut response: HttpResponse, node: NodeId) -> HttpResponse {
    response.headers.remove("connection");
    response
        .headers
        .insert("X-Dandelion-Node", node.to_string());
    response
}

// ----------------------------------------------------------------------
// Blocking member calls (control plane and health probes only)
// ----------------------------------------------------------------------

fn probe_stats(addr: SocketAddr, timeout: Duration) -> Result<(), String> {
    let mut client =
        HttpClientConnection::connect(addr, timeout).map_err(|error| error.to_string())?;
    let response = client
        .request(&HttpRequest::get("/v1/stats"))
        .map_err(|error| error.to_string())?;
    if response.status == StatusCode::OK {
        Ok(())
    } else {
        Err(format!("stats probe answered {}", response.status.0))
    }
}

fn fetch_compositions(addr: SocketAddr, timeout: Duration) -> Result<Vec<String>, String> {
    let mut client =
        HttpClientConnection::connect(addr, timeout).map_err(|error| error.to_string())?;
    let response = client
        .request(&HttpRequest::get("/v1/compositions"))
        .map_err(|error| error.to_string())?;
    if response.status != StatusCode::OK {
        return Err(format!(
            "composition listing answered {}",
            response.status.0
        ));
    }
    let document =
        JsonValue::parse(&response.body_text()).map_err(|error| format!("bad JSON: {error}"))?;
    let names = document
        .get("compositions")
        .and_then(|value| value.as_array())
        .map(|values| {
            values
                .iter()
                .filter_map(JsonValue::as_str)
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    Ok(names)
}

fn register_on_member(addr: SocketAddr, body: &[u8], timeout: Duration) -> Result<String, String> {
    let mut client =
        HttpClientConnection::connect(addr, timeout).map_err(|error| error.to_string())?;
    let response = client
        .request(&HttpRequest::post("/v1/compositions", body.to_vec()))
        .map_err(|error| error.to_string())?;
    if response.status != StatusCode::CREATED {
        return Err(format!(
            "registration answered {}: {}",
            response.status.0,
            response.body_text()
        ));
    }
    JsonValue::parse(&response.body_text())
        .ok()
        .and_then(|document| {
            document
                .get("name")
                .and_then(JsonValue::as_str)
                .map(String::from)
        })
        .ok_or_else(|| "registration response carried no name".to_string())
}

fn relay_drain(addr: SocketAddr, timeout: Duration) -> Result<(), String> {
    let mut client =
        HttpClientConnection::connect(addr, timeout).map_err(|error| error.to_string())?;
    client
        .request(&HttpRequest::post("/v1/drain", Vec::new()))
        .map(|_| ())
        .map_err(|error| error.to_string())
}

// ----------------------------------------------------------------------
// Response helpers
// ----------------------------------------------------------------------

fn json_response(status: StatusCode, value: &JsonValue) -> HttpResponse {
    HttpResponse::new(status, value.to_json_string().into_bytes())
        .with_header("Content-Type", "application/json")
}

/// A structured gateway error in the same wire shape as the worker's.
pub(crate) fn gateway_error(
    status: StatusCode,
    code: &str,
    message: &str,
    retryable: bool,
) -> HttpResponse {
    json_response(
        status,
        &JsonValue::object([(
            "error",
            JsonValue::object([
                ("code", JsonValue::string(code)),
                ("message", JsonValue::string(message)),
                ("retryable", JsonValue::from(retryable)),
            ]),
        )]),
    )
}

/// The `502` for an exchange that died with its upstream connection.
pub(crate) fn upstream_failed_response(node: NodeId) -> HttpResponse {
    gateway_error(
        StatusCode(502),
        "upstream_failed",
        &format!("member {node} failed while handling the request"),
        true,
    )
}

/// The `503` when no routable member exists for a request.
pub(crate) fn no_members_response() -> HttpResponse {
    gateway_error(
        StatusCode::SERVICE_UNAVAILABLE,
        "no_members",
        "no healthy cluster member is available",
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router_without_health() -> Arc<Router> {
        Router::start(GatewayConfig {
            probe_interval: Duration::from_secs(3600),
            ..GatewayConfig::default()
        })
    }

    fn insert_member(router: &Router, port: u16, compositions: &[&str]) -> NodeId {
        let member = Member::new(
            format!("127.0.0.1:{port}").parse().unwrap(),
            MemberState::Healthy,
            compositions.iter().map(|s| s.to_string()).collect(),
        );
        let id = member.id;
        router.members.write().push(member);
        id
    }

    #[test]
    fn no_members_yields_a_retryable_503() {
        let router = router_without_health();
        let reply = router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()));
        let GatewayReply::Respond(response) = reply else {
            panic!("dispatch without members must respond locally");
        };
        assert_eq!(response.status.0, 503);
        assert!(response.body_text().contains("\"no_members\""));
        assert!(response.body_text().contains("\"retryable\":true"));
    }

    #[test]
    fn affinity_is_stable_and_prefers_advertisers() {
        let router = router_without_health();
        insert_member(&router, 9001, &["Alpha"]);
        let beta = insert_member(&router, 9002, &["Beta"]);
        insert_member(&router, 9003, &["Alpha"]);
        // Beta has exactly one advertiser: affinity must always choose it.
        for _ in 0..8 {
            let reply = router.dispatch(&HttpRequest::post("/v1/invoke/Beta", b"x".to_vec()));
            let GatewayReply::Forward(plan) = reply else {
                panic!("invocations must forward");
            };
            assert_eq!(plan.node, beta);
        }
    }

    #[test]
    fn overloaded_preferred_member_loses_to_least_loaded() {
        let router = router_without_health();
        let a = insert_member(&router, 9001, &["Echo"]);
        let b = insert_member(&router, 9002, &["Echo"]);
        // Find the affinity pick, overload it, and confirm the other member
        // receives the traffic.
        let GatewayReply::Forward(first) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must forward");
        };
        let preferred = first.node;
        let other = if preferred == a { b } else { a };
        {
            let members = router.members.read();
            let member = members.iter().find(|m| m.id == preferred).unwrap();
            member.load.in_flight.store(1000, Ordering::Relaxed);
        }
        let GatewayReply::Forward(second) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must forward");
        };
        assert_eq!(second.node, other);
    }

    #[test]
    fn draining_and_ejected_members_receive_no_new_work() {
        let router = router_without_health();
        let a = insert_member(&router, 9001, &["Echo"]);
        let b = insert_member(&router, 9002, &["Echo"]);
        router.drain(a);
        for _ in 0..4 {
            let GatewayReply::Forward(plan) =
                router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
            else {
                panic!("must forward");
            };
            assert_eq!(plan.node, b);
        }
        router.members.write()[1].state = MemberState::Ejected;
        let GatewayReply::Respond(response) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("all members out of rotation must respond locally");
        };
        assert_eq!(response.status.0, 503);
    }

    #[test]
    fn polls_route_to_the_recorded_owner() {
        let router = router_without_health();
        let a = insert_member(&router, 9001, &["Echo"]);
        let b = insert_member(&router, 9002, &["Echo"]);
        let id = InvocationId::from_raw(777);
        router.record_invocation(id, b);
        let GatewayReply::Forward(plan) =
            router.dispatch(&HttpRequest::get(format!("/v1/invocations/{id}")))
        else {
            panic!("polls must forward");
        };
        assert_eq!(plan.node, b);
        // Unknown ids fall back to any routable member.
        let GatewayReply::Forward(fallback) =
            router.dispatch(&HttpRequest::get("/v1/invocations/inv-424242"))
        else {
            panic!("polls must forward");
        };
        assert!(fallback.node == a || fallback.node == b);
    }

    #[test]
    fn ejection_after_consecutive_failures_and_replan_excludes_tried() {
        let router = router_without_health();
        let a = insert_member(&router, 9001, &["Echo"]);
        let b = insert_member(&router, 9002, &["Echo"]);
        for _ in 0..router.config.fail_threshold {
            router.note_upstream_failure(a);
        }
        assert_eq!(
            router
                .member_rows()
                .iter()
                .find(|(id, _, _)| *id == a)
                .unwrap()
                .2,
            "ejected"
        );
        // Replanning a forward that already tried `b` has nowhere to go.
        let GatewayReply::Forward(mut plan) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must forward");
        };
        assert_eq!(plan.node, b);
        plan.tried.push(b);
        assert!(router.replan(plan).is_none());
    }

    #[test]
    fn replan_is_denied_once_the_retry_budget_runs_dry() {
        let router = router_without_health();
        insert_member(&router, 9001, &["Echo"]);
        insert_member(&router, 9002, &["Echo"]);
        let GatewayReply::Forward(plan) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must forward");
        };
        // Drain the chosen member's bucket (the initial float allows a
        // handful of cold-start retries), then replanning must refuse even
        // though another member is available.
        while plan.load.retry_budget.try_withdraw() {}
        assert!(router.replan(plan).is_none());
        assert_eq!(router.stats.budget_denials.load(Ordering::Relaxed), 1);
        assert_eq!(router.stats.retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn successes_refill_the_retry_budget() {
        let router = router_without_health();
        insert_member(&router, 9001, &["Echo"]);
        insert_member(&router, 9002, &["Echo"]);
        let GatewayReply::Forward(plan) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must forward");
        };
        while plan.load.retry_budget.try_withdraw() {}
        // Ten successes bank exactly one retry.
        for _ in 0..10 {
            router.note_upstream_success(&plan.load);
        }
        let replanned = router.replan(plan).expect("a banked retry is granted");
        assert_eq!(router.stats.retries.load(Ordering::Relaxed), 1);
        assert!(
            router.replan(replanned).is_none(),
            "the bank held one retry, not two"
        );
    }

    #[test]
    fn open_circuit_takes_a_member_out_of_rotation() {
        let router = router_without_health();
        let a = insert_member(&router, 9001, &["Echo"]);
        let b = insert_member(&router, 9002, &["Echo"]);
        {
            let members = router.members.read();
            let member = members.iter().find(|m| m.id == a).unwrap();
            for _ in 0..5 {
                member.load.circuit.note_error();
            }
            assert!(!member.load.circuit.allows());
        }
        for _ in 0..8 {
            let GatewayReply::Forward(plan) =
                router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
            else {
                panic!("must forward");
            };
            assert_eq!(plan.node, b, "the open circuit must shed member a");
        }
        // Both circuits open: nothing is routable.
        {
            let members = router.members.read();
            let member = members.iter().find(|m| m.id == b).unwrap();
            for _ in 0..5 {
                member.load.circuit.note_error();
            }
        }
        let GatewayReply::Respond(response) =
            router.dispatch(&HttpRequest::post("/v1/invoke/Echo", b"x".to_vec()))
        else {
            panic!("must respond locally when every circuit is open");
        };
        assert_eq!(response.status.0, 503);
    }

    #[test]
    fn evicted_invocation_ids_answer_410_not_a_misrouted_404() {
        let router = router_without_health();
        let node = insert_member(&router, 9001, &["Echo"]);
        let first = InvocationId::from_raw(1);
        router.record_invocation(first, node);
        // Push the first id out of the bounded owner map.
        for raw in 2..(INVOCATION_ROUTE_CAPACITY as u64 + 3) {
            router.record_invocation(InvocationId::from_raw(raw), node);
        }
        let GatewayReply::Respond(response) =
            router.dispatch(&HttpRequest::get(format!("/v1/invocations/{first}")))
        else {
            panic!("an evicted id must be answered locally");
        };
        assert_eq!(response.status.0, 410);
        assert!(response.body_text().contains("\"result_evicted\""));
        assert_eq!(router.stats.evicted_polls.load(Ordering::Relaxed), 1);
        // Ids still tracked keep forwarding to their owner.
        let live = InvocationId::from_raw(INVOCATION_ROUTE_CAPACITY as u64);
        let GatewayReply::Forward(plan) =
            router.dispatch(&HttpRequest::get(format!("/v1/invocations/{live}")))
        else {
            panic!("live ids still forward");
        };
        assert_eq!(plan.node, node);
        // Resubmitting an evicted id makes it live again.
        router.record_invocation(first, node);
        let GatewayReply::Forward(plan) =
            router.dispatch(&HttpRequest::get(format!("/v1/invocations/{first}")))
        else {
            panic!("a resubmitted id forwards again");
        };
        assert_eq!(plan.node, node);
    }

    /// A loopback port with nothing listening: probes to it fail instantly.
    fn dead_port() -> u16 {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().port()
    }

    #[test]
    fn dead_draining_member_is_removed_when_probes_fail() {
        let router = router_without_health();
        let node = insert_member(&router, dead_port(), &["Echo"]);
        router.drain(node);
        // Nothing in flight: the rolling restart killed the process, the
        // probe fails, and the row must go — not linger as "draining".
        router.probe_members();
        assert!(
            router.member_rows().is_empty(),
            "a dead drained member with no in-flight work must be removed"
        );
        assert_eq!(router.stats.drained_out.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dead_draining_member_with_inflight_work_is_removed_after_threshold() {
        let router = router_without_health();
        let node = insert_member(&router, dead_port(), &["Echo"]);
        {
            let members = router.members.read();
            members[0].load.in_flight.store(1, Ordering::Relaxed);
        }
        router.drain(node);
        for round in 0..router.config.fail_threshold {
            assert_eq!(
                router.member_rows().len(),
                1,
                "still within the failure threshold after {round} probes"
            );
            router.probe_members();
        }
        assert!(
            router.member_rows().is_empty(),
            "consecutive probe failures must remove a draining member even \
             when its in-flight gauge never settled"
        );
    }

    #[test]
    fn mutating_control_plane_requests_defer_to_the_control_thread() {
        let router = router_without_health();
        let drain = HttpRequest::post("/v1/cluster/drain/node-424242", Vec::new());
        let GatewayReply::Control(op) = router.dispatch(&drain) else {
            panic!("mutating control-plane requests must defer off the event loop");
        };
        let (tx, rx) = mpsc::channel();
        router.submit_control(
            op,
            Box::new(move |response| {
                let _ = tx.send(response);
            }),
        );
        let response = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("the control thread answers");
        assert_eq!(
            response.status.0,
            404,
            "unknown node: {}",
            response.body_text()
        );

        // After shutdown, deferred operations answer 503 instead of hanging.
        router.shutdown();
        let GatewayReply::Control(op) = router.dispatch(&drain) else {
            panic!("dispatch shape does not change at shutdown");
        };
        let (tx, rx) = mpsc::channel();
        router.submit_control(
            op,
            Box::new(move |response| {
                let _ = tx.send(response);
            }),
        );
        let response = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(response.status.0, 503);
        assert!(response.body_text().contains("gateway_stopping"));
    }

    #[test]
    fn proxy_transforms_strip_hop_by_hop_and_stamp_the_node() {
        let request = HttpRequest::post("/v1/invoke/Echo", b"payload".to_vec())
            .with_header("Connection", "close")
            .with_header("Content-Type", "text/plain");
        let upstream = proxy_request(&request);
        assert!(upstream.headers.get("connection").is_none());
        assert_eq!(upstream.headers.get("content-type"), Some("text/plain"));

        let node = NodeId::from_raw(7);
        let body = dandelion_common::SharedBytes::from_vec(b"result".to_vec());
        let mut response = HttpResponse::new(StatusCode::OK, Vec::new());
        response.body = body.clone();
        response.headers.insert("Connection", "keep-alive");
        let proxied = proxy_response(response, node);
        assert!(proxied.headers.get("connection").is_none());
        assert_eq!(proxied.headers.get("x-dandelion-node"), Some("node-7"));
        // The zero-copy invariant: the body is the same buffer, not a copy.
        assert!(dandelion_common::SharedBytes::same_buffer(
            &proxied.body,
            &body
        ));
    }
}
