//! The upstream half of the proxy: pooled keep-alive connections from the
//! gateway to a member node, driven by the same epoll event loops as the
//! client connections.
//!
//! An [`UpstreamConn`] is the second connection role in an event loop's
//! slab. Requests are serialized once (bodies attached by reference) and
//! pipelined onto the member connection through a resumable
//! [`RopeWriter`]; responses stream back through a [`ResponseDecoder`]
//! whose bodies are zero-copy views of the receive buffer, and are matched
//! FIFO to the client slots that wait for them. The gateway therefore
//! never burns a thread per in-flight request — an upstream connection is
//! a slab entry, exactly like the downstream connections it serves.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;

use dandelion_common::{NodeId, Rope, RopeWriter};
use dandelion_http::{HttpResponse, ParseLimits, ResponseDecoder};

use crate::sys::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Where a proxied response must be delivered: the client connection slot
/// that parked for it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Origin {
    /// Slab token of the client connection (generation-tagged).
    pub token: u64,
    /// Pipeline sequence of the client's waiting slot.
    pub seq: u64,
    /// Serialized request bytes, released from the member's queued-bytes
    /// gauge when the exchange settles.
    pub bytes: usize,
    /// `POST /v1/invocations/{name}`: a `202` response carries the
    /// invocation id the router must remember for owner-routed polls.
    pub track_submit: bool,
}

/// What the event loop should do with an upstream connection after a pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpstreamVerdict {
    Keep,
    /// Connection is unusable (EOF, error, `Connection: close`); pending
    /// exchanges still queued fail with `502`.
    Close,
}

/// One pooled keep-alive connection from the gateway to a member.
pub(crate) struct UpstreamConn {
    stream: TcpStream,
    node: NodeId,
    /// The serialized request currently (partially) on the wire.
    writer: Option<RopeWriter>,
    /// Requests accepted but not yet written.
    outbox: VecDeque<Rope>,
    decoder: ResponseDecoder,
    /// Exchanges written (or being written) and awaiting their responses,
    /// in pipeline order.
    pending: VecDeque<Origin>,
    /// Interest mask currently registered with the epoll.
    interest: u32,
    /// Last moment response bytes arrived; with non-empty `pending`, a
    /// stall past the upstream timeout closes the connection (and fails
    /// the pending exchanges) instead of pinning client slots forever.
    last_progress: Instant,
}

impl UpstreamConn {
    pub(crate) fn new(stream: TcpStream, node: NodeId, limits: ParseLimits) -> UpstreamConn {
        UpstreamConn {
            stream,
            node,
            writer: None,
            outbox: VecDeque::new(),
            decoder: ResponseDecoder::new(limits),
            pending: VecDeque::new(),
            interest: EPOLLIN | EPOLLRDHUP,
            last_progress: Instant::now(),
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub(crate) fn node(&self) -> NodeId {
        self.node
    }

    /// Exchanges queued or awaiting responses on this connection.
    pub(crate) fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Drains the pending exchanges (connection teardown: the caller owes
    /// each origin an error response). Call [`UpstreamConn::take_unsent`]
    /// first — afterwards everything left here reached the wire (fully or
    /// partially) and cannot be retried elsewhere.
    pub(crate) fn take_pending(&mut self) -> VecDeque<Origin> {
        std::mem::take(&mut self.pending)
    }

    /// Splits off the exchanges that never reached the wire (teardown):
    /// the outbox holds fully unsent requests, which align with the tail
    /// of `pending`, so they can be replayed on another member. Exchanges
    /// written or partially written stay in `pending` and must fail — the
    /// member may have executed them.
    pub(crate) fn take_unsent(&mut self) -> Vec<(Rope, Origin)> {
        let mut unsent = Vec::new();
        while let Some(rope) = self.outbox.pop_back() {
            let origin = self
                .pending
                .pop_back()
                .expect("every outbox entry has a pending origin");
            unsent.push((rope, origin));
        }
        unsent.reverse();
        unsent
    }

    /// Accepts one serialized exchange for delivery to the member.
    pub(crate) fn enqueue(&mut self, rope: Rope, origin: Origin) {
        self.outbox.push_back(rope);
        self.pending.push_back(origin);
    }

    pub(crate) fn registered_interest(&self) -> u32 {
        self.interest
    }

    pub(crate) fn set_registered_interest(&mut self, mask: u32) {
        self.interest = mask;
    }

    /// The readiness mask this connection needs: always readable (the
    /// member may close or respond at any time), writable while requests
    /// wait to leave.
    pub(crate) fn desired_interest(&self) -> u32 {
        let mut mask = EPOLLIN | EPOLLRDHUP;
        if self.writer.is_some() || !self.outbox.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Whether the pending responses have stalled past `timeout`.
    pub(crate) fn stalled(&self, now: Instant, timeout: std::time::Duration) -> bool {
        !self.pending.is_empty() && now.duration_since(self.last_progress) >= timeout
    }

    /// Advances the connection: writes queued requests until the socket
    /// blocks, reads and decodes responses while `readable`. Decoded
    /// responses are returned paired with their origins for the event loop
    /// to deliver to the client connections.
    pub(crate) fn pump(
        &mut self,
        readable: bool,
        read_chunk: usize,
    ) -> (UpstreamVerdict, Vec<(Origin, HttpResponse)>) {
        let mut delivered = Vec::new();
        // Write side: drive the current writer, then promote the outbox.
        loop {
            if let Some(writer) = &mut self.writer {
                match writer.write_some(&mut self.stream) {
                    Ok(true) => self.writer = None,
                    Ok(false) => break,
                    Err(_) => return (UpstreamVerdict::Close, delivered),
                }
            }
            match self.outbox.pop_front() {
                Some(rope) => self.writer = Some(RopeWriter::new(rope)),
                None => break,
            }
        }
        // Read side: pull bytes and decode complete responses in order.
        let mut saw_eof = false;
        if readable {
            loop {
                match self.decoder.read_from(&mut self.stream, read_chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(_) => self.last_progress = Instant::now(),
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        saw_eof = true;
                        break;
                    }
                }
            }
        }
        let mut close = saw_eof;
        loop {
            match self.decoder.next_response() {
                Ok(Some(response)) => {
                    let Some(origin) = self.pending.pop_front() else {
                        // A response with no matching exchange: protocol
                        // desync, drop the connection.
                        close = true;
                        break;
                    };
                    // The member closing after this response ends the
                    // connection's usefulness but the response itself is
                    // still good.
                    if response
                        .headers
                        .get("connection")
                        .is_some_and(|value| value.eq_ignore_ascii_case("close"))
                    {
                        close = true;
                    }
                    delivered.push((origin, response));
                }
                Ok(None) => break,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if close {
            (UpstreamVerdict::Close, delivered)
        } else {
            (UpstreamVerdict::Keep, delivered)
        }
    }
}
