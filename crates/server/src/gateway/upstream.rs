//! The upstream half of the proxy: pooled keep-alive connections from the
//! gateway to a member node, driven by the same epoll event loops as the
//! client connections.
//!
//! An [`UpstreamConn`] is the second connection role in an event loop's
//! slab. Requests are serialized once (bodies attached by reference) and
//! pipelined onto the member connection through a resumable
//! [`RopeWriter`]; responses stream back through a [`ResponseDecoder`]
//! whose bodies are zero-copy views of the receive buffer, and are matched
//! FIFO to the client slots that wait for them. The gateway therefore
//! never burns a thread per in-flight request — an upstream connection is
//! a slab entry, exactly like the downstream connections it serves.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;

use dandelion_common::{failpoint, NodeId, Rope, RopeWriter};
use dandelion_http::{HttpResponse, ParseLimits, ResponseDecoder};

/// Where a proxied response must be delivered: the client connection slot
/// that parked for it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Origin {
    /// Slab token of the client connection (generation-tagged).
    pub token: u64,
    /// Pipeline sequence of the client's waiting slot.
    pub seq: u64,
    /// Serialized request bytes, released from the member's queued-bytes
    /// gauge when the exchange settles.
    pub bytes: usize,
    /// `POST /v1/invocations/{name}`: a `202` response carries the
    /// invocation id the router must remember for owner-routed polls.
    pub track_submit: bool,
}

/// What the event loop should do with an upstream connection after a pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpstreamVerdict {
    Keep,
    /// Connection is unusable (EOF, error, `Connection: close`); pending
    /// exchanges still queued fail with `502`.
    Close,
}

/// One pooled keep-alive connection from the gateway to a member.
pub(crate) struct UpstreamConn {
    stream: TcpStream,
    node: NodeId,
    /// The serialized request currently (partially) on the wire.
    writer: Option<RopeWriter>,
    /// Requests accepted but not yet written.
    outbox: VecDeque<Rope>,
    decoder: ResponseDecoder,
    /// Exchanges written (or being written) and awaiting their responses,
    /// in pipeline order.
    pending: VecDeque<Origin>,
    /// A non-blocking connect is still in progress: the socket reporting
    /// writable (or responding) completes it; until then the stall check
    /// runs on the (short) connect budget instead of the response timeout.
    connecting: bool,
    /// Last moment the connection made observable progress: response bytes
    /// arrived, the connect completed, or — so an idle keep-alive's stale
    /// clock cannot fail a fresh exchange — the pending set went from empty
    /// to non-empty. With non-empty `pending`, a stall past the upstream
    /// timeout closes the connection (and fails the pending exchanges)
    /// instead of pinning client slots forever.
    last_progress: Instant,
}

impl UpstreamConn {
    pub(crate) fn new(
        stream: TcpStream,
        node: NodeId,
        limits: ParseLimits,
        connecting: bool,
    ) -> UpstreamConn {
        UpstreamConn {
            stream,
            node,
            writer: None,
            outbox: VecDeque::new(),
            decoder: ResponseDecoder::new(limits),
            pending: VecDeque::new(),
            connecting,
            last_progress: Instant::now(),
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub(crate) fn node(&self) -> NodeId {
        self.node
    }

    /// Exchanges queued or awaiting responses on this connection.
    pub(crate) fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Drains the pending exchanges (connection teardown: the caller owes
    /// each origin an error response). Call [`UpstreamConn::take_unsent`]
    /// first — afterwards everything left here reached the wire (fully or
    /// partially) and cannot be retried elsewhere.
    pub(crate) fn take_pending(&mut self) -> VecDeque<Origin> {
        std::mem::take(&mut self.pending)
    }

    /// Splits off the exchanges that never reached the wire (teardown):
    /// the outbox holds fully unsent requests, which align with the tail
    /// of `pending`, so they can be replayed on another member. Exchanges
    /// written or partially written stay in `pending` and must fail — the
    /// member may have executed them.
    pub(crate) fn take_unsent(&mut self) -> Vec<(Rope, Origin)> {
        let mut unsent = Vec::new();
        while let Some(rope) = self.outbox.pop_back() {
            let origin = self
                .pending
                .pop_back()
                .expect("every outbox entry has a pending origin");
            unsent.push((rope, origin));
        }
        unsent.reverse();
        unsent
    }

    /// Accepts one serialized exchange for delivery to the member.
    pub(crate) fn enqueue(&mut self, rope: Rope, origin: Origin) {
        // A pooled keep-alive connection may have sat idle far longer than
        // the stall timeout; restart the progress clock when it goes from
        // idle to loaded so the deadline measures this exchange, not the
        // idle gap before it.
        if self.pending.is_empty() {
            self.last_progress = Instant::now();
        }
        self.outbox.push_back(rope);
        self.pending.push_back(origin);
    }

    /// Whether the non-blocking connect is still in progress.
    pub(crate) fn is_connecting(&self) -> bool {
        self.connecting
    }

    /// The socket reported writable. On a connecting socket, writability is
    /// how the kernel signals a successful connect (failures arrive as
    /// `EPOLLERR`/`EPOLLHUP` instead), so this completes the connect and
    /// counts as progress.
    pub(crate) fn note_writable(&mut self) {
        if self.connecting {
            self.connecting = false;
            self.last_progress = Instant::now();
        }
    }

    /// Whether the connection has stalled past `timeout` (no response
    /// progress with exchanges pending, or a connect that never completed).
    pub(crate) fn stalled(&self, now: Instant, timeout: std::time::Duration) -> bool {
        (self.connecting || !self.pending.is_empty())
            && now.duration_since(self.last_progress) >= timeout
    }

    /// Advances the connection: writes queued requests until the socket
    /// blocks, reads and decodes responses while `readable`. Decoded
    /// responses are returned paired with their origins for the event loop
    /// to deliver to the client connections.
    pub(crate) fn pump(
        &mut self,
        readable: bool,
        read_chunk: usize,
    ) -> (UpstreamVerdict, Vec<(Origin, HttpResponse)>) {
        let mut delivered = Vec::new();
        // Write side: drive the current writer, then promote the outbox.
        let mut write_failed = false;
        loop {
            if let Some(writer) = &mut self.writer {
                // Injected write fault: same disposition as a kernel write
                // error — doom the connection but still drain the read side.
                if failpoint::enabled() && failpoint::check("upstream/write").is_some() {
                    write_failed = true;
                    break;
                }
                match writer.write_some(&mut self.stream) {
                    Ok(true) => self.writer = None,
                    Ok(false) => break,
                    // A write error dooms the connection, but the member may
                    // already have answered earlier exchanges: fall through
                    // to the read/decode side so responses sitting in the
                    // socket (or the decoder buffer) are still delivered
                    // before the remaining pending exchanges are failed.
                    Err(_) => {
                        write_failed = true;
                        break;
                    }
                }
            }
            match self.outbox.pop_front() {
                Some(rope) => self.writer = Some(RopeWriter::new(rope)),
                None => break,
            }
        }
        // Read side: pull bytes and decode complete responses in order.
        let mut saw_eof = false;
        let mut read_chunk = read_chunk;
        if readable || write_failed {
            loop {
                if failpoint::enabled() {
                    match failpoint::check("upstream/read") {
                        // Injected truncation: the member "vanished"
                        // mid-response; pending exchanges fail `502`.
                        Some(failpoint::Fault::Error) => {
                            saw_eof = true;
                            break;
                        }
                        Some(failpoint::Fault::Partial(cap)) => {
                            read_chunk = read_chunk.min(cap.max(1));
                        }
                        None => {}
                    }
                }
                match self.decoder.read_from(&mut self.stream, read_chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(_) => self.last_progress = Instant::now(),
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        saw_eof = true;
                        break;
                    }
                }
            }
        }
        let mut close = saw_eof || write_failed;
        loop {
            match self.decoder.next_response() {
                Ok(Some(response)) => {
                    let Some(origin) = self.pending.pop_front() else {
                        // A response with no matching exchange: protocol
                        // desync, drop the connection.
                        close = true;
                        break;
                    };
                    // The member closing after this response ends the
                    // connection's usefulness but the response itself is
                    // still good.
                    if response
                        .headers
                        .get("connection")
                        .is_some_and(|value| value.eq_ignore_ascii_case("close"))
                    {
                        close = true;
                    }
                    delivered.push((origin, response));
                }
                Ok(None) => break,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if close {
            (UpstreamVerdict::Close, delivered)
        } else {
            (UpstreamVerdict::Keep, delivered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{Shutdown, TcpListener};
    use std::time::Duration;

    use dandelion_http::{HttpRequest, HttpResponse};

    /// A connected loopback pair: the upstream side (non-blocking, as the
    /// event loop would hold it) and the member side.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ours = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        ours.set_nonblocking(true).unwrap();
        let (member, _) = listener.accept().unwrap();
        (ours, member)
    }

    fn origin(seq: u64) -> Origin {
        Origin {
            token: 7,
            seq,
            bytes: 16,
            track_submit: false,
        }
    }

    fn request_rope() -> Rope {
        HttpRequest::post("/v1/invoke/Echo", b"payload".to_vec()).to_rope()
    }

    #[test]
    fn enqueue_after_idle_restarts_the_stall_clock() {
        let (ours, _member) = socket_pair();
        let mut conn = UpstreamConn::new(ours, NodeId::from_raw(1), ParseLimits::default(), false);
        let timeout = Duration::from_millis(50);
        // Let the connection sit idle well past the timeout: idleness alone
        // must never stall it, and the first exchange after the gap must be
        // measured from its own enqueue, not from the stale idle clock.
        std::thread::sleep(Duration::from_millis(70));
        assert!(
            !conn.stalled(Instant::now(), timeout),
            "idle is not a stall"
        );
        conn.enqueue(request_rope(), origin(0));
        assert!(
            !conn.stalled(Instant::now(), timeout),
            "a fresh exchange on a long-idle keep-alive gets the full timeout"
        );
        std::thread::sleep(Duration::from_millis(70));
        assert!(
            conn.stalled(Instant::now(), timeout),
            "a genuinely unanswered exchange still stalls"
        );
    }

    #[test]
    fn write_error_still_delivers_responses_already_received() {
        let (ours, mut member) = socket_pair();
        let mut conn = UpstreamConn::new(ours, NodeId::from_raw(2), ParseLimits::default(), false);
        // Exchange 0 reaches the member, which answers it.
        conn.enqueue(request_rope(), origin(0));
        let (verdict, delivered) = conn.pump(false, 4096);
        assert_eq!(verdict, UpstreamVerdict::Keep);
        assert!(delivered.is_empty());
        let mut sink = [0u8; 4096];
        assert!(member.read(&mut sink).unwrap() > 0);
        let answer = HttpResponse::ok(b"already sent".to_vec())
            .with_header("Connection", "keep-alive")
            .to_bytes();
        std::io::Write::write_all(&mut member, &answer).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Force the next write to fail, with the member's answer sitting in
        // the receive buffer: the doomed pump must deliver it, not discard
        // it behind the write error.
        conn.stream.shutdown(Shutdown::Write).unwrap();
        conn.enqueue(request_rope(), origin(1));
        let (verdict, delivered) = conn.pump(false, 4096);
        assert_eq!(verdict, UpstreamVerdict::Close);
        assert_eq!(
            delivered.len(),
            1,
            "the response received before the write error must be delivered"
        );
        assert_eq!(delivered[0].0.seq, 0);
        assert_eq!(delivered[0].1.body.as_ref(), b"already sent");
        // Only the exchange that never got an answer is left to fail.
        let remaining = conn.take_pending();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].seq, 1);
    }
}
