//! `dandelion-server`: real network serving for the Dandelion frontend.
//!
//! The frontend ([`dandelion_core::Frontend`]) is transport-agnostic: it
//! maps [`HttpRequest`](dandelion_http::HttpRequest)s to worker operations.
//! This crate is the transport — the subsystem the paper's platform puts
//! between untrusted clients and the dispatcher:
//!
//! * a non-blocking TCP listener feeding a **small pool of epoll event
//!   loops** ([`sys`] declares the few libc symbols needed — no async
//!   runtime is vendored). Each loop multiplexes thousands of connections:
//!   an idle keep-alive client or one waiting on an invocation consumes
//!   memory only, never a thread,
//! * **per-connection state machines** that read into pooled buffers,
//!   parse requests incrementally (partial reads, pipelined keep-alive
//!   requests, `Connection: close`), dispatch without blocking
//!   ([`dandelion_core::Frontend::begin`]), and write responses with
//!   resumable vectored [`RopeWriter`](dandelion_common::RopeWriter)
//!   writes so bodies leave the process by reference even across
//!   `EWOULDBLOCK` suspensions,
//! * **asynchronous completion**: the dispatcher settles a synchronous
//!   invocation by posting the finished response to the owning event loop
//!   through an `eventfd` wakeup,
//! * **admission control**: a concurrent-connection cap (`503` past it),
//!   per-client-IP token-bucket rate limiting (`429`), head/body size
//!   limits (`431`/`413`), and a per-request read deadline (`408`; idle
//!   keep-alives are closed silently and counted),
//! * **graceful shutdown** that stops admitting, closes keep-alive
//!   connections at their next response boundary and drains in-flight
//!   invocations before returning.
//!
//! The `dandelion-serve` binary wires a demo worker behind a [`Server`];
//! [`HttpClientConnection`] is the in-repo load generator used by the
//! `network` benchmark and the integration tests.

mod client;
mod config;
mod conn;
mod event_loop;
pub mod gateway;
mod rate;
mod server;
pub mod sys;

pub use client::HttpClientConnection;
pub use config::ServerConfig;
pub use conn::{
    overloaded_response, rate_limited_response, rejection_response, response_rope, timeout_response,
};
pub use gateway::{GatewayConfig, Router};
pub use rate::{RateLimit, RateLimiter};
pub use server::{Server, ServerStats, ServerStatsSnapshot};
