//! `dandelion-server`: real network serving for the Dandelion frontend.
//!
//! The frontend ([`dandelion_core::Frontend`]) is transport-agnostic: it
//! maps [`HttpRequest`](dandelion_http::HttpRequest)s to worker operations.
//! This crate is the transport — the subsystem the paper's platform puts
//! between untrusted clients and the dispatcher:
//!
//! * a TCP listener with an accept loop feeding a **fixed pool of
//!   connection-handler threads** (one per core by default),
//! * **per-connection state machines** that read into pooled buffers,
//!   parse requests incrementally (partial reads, pipelined keep-alive
//!   requests, `Connection: close`), and write responses with vectored
//!   [`Rope`](dandelion_common::Rope) writes so bodies leave the process
//!   by reference,
//! * **admission control**: a concurrent-connection cap (`503` past it),
//!   head/body size limits (`431`/`413`), and a per-connection read
//!   deadline (`408`) so slow clients cannot pin a handler,
//! * **graceful shutdown** that stops admitting, closes keep-alive
//!   connections at their next response boundary and drains in-flight
//!   invocations before returning.
//!
//! The `dandelion-serve` binary wires a demo worker behind a [`Server`];
//! [`HttpClientConnection`] is the in-repo load generator used by the
//! `network` benchmark and the integration tests.

mod client;
mod config;
mod conn;
mod server;

pub use client::HttpClientConnection;
pub use config::ServerConfig;
pub use conn::{overloaded_response, rejection_response, response_rope, timeout_response};
pub use server::{Server, ServerStats, ServerStatsSnapshot};
