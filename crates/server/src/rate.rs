//! Per-client rate limiting: token buckets keyed by peer IP.
//!
//! The connection cap bounds how many sockets one node holds open; it does
//! not stop a single client from monopolizing the worker with requests over
//! a few keep-alive connections. A [`RateLimiter`] sits in front of request
//! dispatch: each peer IP owns a token bucket refilled at the configured
//! sustained rate up to a burst ceiling, every request spends one token, and
//! a request arriving to an empty bucket is answered with `429` and the
//! stable `rate_limited` error code — the connection stays open, the client
//! is expected to back off and retry.
//!
//! One limiter is shared by every event loop (limits are per client, not
//! per loop), guarded by a plain mutex: the critical section is a hash
//! lookup and two float operations, orders of magnitude cheaper than the
//! request dispatch behind it. Buckets of idle peers are pruned (at most
//! once per [`PRUNE_INTERVAL`]) once the table grows past a high-water
//! mark, so the map tracks active clients rather than every address ever
//! seen.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

use parking_lot::Mutex;

/// Sustained rate and burst ceiling of the per-IP token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Tokens added per second (sustained requests/second per client IP).
    pub requests_per_sec: u32,
    /// Bucket capacity: how many requests may arrive back-to-back before
    /// the sustained rate applies.
    pub burst: u32,
}

/// Prune idle buckets once the table holds this many peers.
const PRUNE_HIGH_WATER: usize = 4096;

/// Minimum spacing between prune scans: the scan is O(table), so it must
/// not run per request under a many-IP flood (the exact load rate limiting
/// exists for) — between scans the table may transiently exceed the
/// high-water mark, bounded by the request rate over this interval.
const PRUNE_INTERVAL: std::time::Duration = std::time::Duration::from_secs(1);

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<IpAddr, Bucket>,
    last_prune: Option<Instant>,
}

/// Token buckets keyed by peer IP (see the module docs).
#[derive(Debug)]
pub struct RateLimiter {
    limit: RateLimit,
    buckets: Mutex<Buckets>,
}

impl RateLimiter {
    /// Creates a limiter enforcing `limit` per client IP.
    pub fn new(limit: RateLimit) -> Self {
        Self {
            limit,
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// Spends one token from `peer`'s bucket; `false` means over limit and
    /// the request should be refused with `429`.
    pub fn admit(&self, peer: IpAddr) -> bool {
        self.admit_at(peer, Instant::now())
    }

    /// [`RateLimiter::admit`] with an explicit clock, for deterministic
    /// tests.
    pub fn admit_at(&self, peer: IpAddr, now: Instant) -> bool {
        let rate = f64::from(self.limit.requests_per_sec);
        let burst = f64::from(self.limit.burst.max(1));
        let mut buckets = self.buckets.lock();
        let prune_due = buckets
            .last_prune
            .is_none_or(|last| now.saturating_duration_since(last) >= PRUNE_INTERVAL);
        if buckets.map.len() >= PRUNE_HIGH_WATER && prune_due && !buckets.map.contains_key(&peer) {
            // Drop peers whose buckets have refilled to the brim: they have
            // been idle for at least burst/rate seconds and lose nothing by
            // starting from a fresh (full) bucket later.
            buckets.map.retain(|_, bucket| {
                bucket.tokens + now.duration_since(bucket.refilled).as_secs_f64() * rate < burst
            });
            buckets.last_prune = Some(now);
        }
        let bucket = buckets.map.entry(peer).or_insert(Bucket {
            tokens: burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_then_sustained_rate() {
        let limiter = RateLimiter::new(RateLimit {
            requests_per_sec: 2,
            burst: 3,
        });
        let start = Instant::now();
        // The full burst passes, the next request is refused.
        for _ in 0..3 {
            assert!(limiter.admit_at(ip(1), start));
        }
        assert!(!limiter.admit_at(ip(1), start));
        // Half a second refills one token at 2 rps.
        let later = start + Duration::from_millis(500);
        assert!(limiter.admit_at(ip(1), later));
        assert!(!limiter.admit_at(ip(1), later));
    }

    #[test]
    fn peers_are_limited_independently() {
        let limiter = RateLimiter::new(RateLimit {
            requests_per_sec: 1,
            burst: 1,
        });
        let now = Instant::now();
        assert!(limiter.admit_at(ip(1), now));
        assert!(!limiter.admit_at(ip(1), now));
        // A different client is untouched by the first one's spend.
        assert!(limiter.admit_at(ip(2), now));
    }

    #[test]
    fn refill_caps_at_the_burst_ceiling() {
        let limiter = RateLimiter::new(RateLimit {
            requests_per_sec: 100,
            burst: 2,
        });
        let start = Instant::now();
        assert!(limiter.admit_at(ip(9), start));
        // A long idle period must not bank more than `burst` tokens.
        let later = start + Duration::from_secs(3600);
        assert!(limiter.admit_at(ip(9), later));
        assert!(limiter.admit_at(ip(9), later));
        assert!(!limiter.admit_at(ip(9), later));
    }

    #[test]
    fn idle_peers_are_pruned_at_the_high_water_mark() {
        let limiter = RateLimiter::new(RateLimit {
            requests_per_sec: 1000,
            burst: 1,
        });
        let start = Instant::now();
        for index in 0..PRUNE_HIGH_WATER {
            let peer = IpAddr::V4(Ipv4Addr::from(u32::try_from(index).unwrap()));
            assert!(limiter.admit_at(peer, start));
        }
        assert_eq!(limiter.buckets.lock().map.len(), PRUNE_HIGH_WATER);
        // All buckets refill within a few ms at 1000 rps; a new peer
        // arriving later triggers the prune.
        let later = start + Duration::from_secs(1);
        assert!(limiter.admit_at(ip(123), later));
        assert!(limiter.buckets.lock().map.len() < PRUNE_HIGH_WATER);
    }
}
