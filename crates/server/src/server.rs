//! The server façade: binding, event-loop pool lifecycle, stats and
//! graceful shutdown.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dandelion_common::JsonValue;
use dandelion_core::Frontend;

use crate::config::ServerConfig;
use crate::event_loop::{EventLoop, LoopShared};
use crate::gateway::Router;
use crate::rate::RateLimiter;
use crate::sys::{bind_reuseport, pin_thread_to_core};

/// Counters and gauges of the serving layer (all relaxed; they feed
/// dashboards, `/v1/stats` and tests, not control flow).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections admitted past admission control.
    pub accepted: AtomicU64,
    /// Connections refused by admission control (answered `503`).
    pub rejected_connections: AtomicU64,
    /// Gauge: connections currently held open across all event loops.
    pub open_connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests rejected by the parser (`400`/`413`/`431`).
    pub rejected_requests: AtomicU64,
    /// Requests refused by the per-client rate limiter (`429`).
    pub rate_limited: AtomicU64,
    /// Connections closed for stalling mid-request past the read deadline
    /// (`408`).
    pub timeouts: AtomicU64,
    /// Idle keep-alive connections closed silently after the idle window.
    pub idle_closed: AtomicU64,
    /// Connections closed because the client stopped reading its response
    /// past the write deadline.
    pub write_timeouts: AtomicU64,
    /// Connections accepted and immediately closed because the process ran
    /// out of file descriptors (the accept path's reserve-fd shed).
    pub accept_overflow: AtomicU64,
}

/// Point-in-time snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections admitted past admission control.
    pub accepted: u64,
    /// Connections refused by admission control.
    pub rejected_connections: u64,
    /// Connections currently held open (gauge).
    pub open_connections: u64,
    /// Requests served.
    pub requests: u64,
    /// Requests rejected by the parser.
    pub rejected_requests: u64,
    /// Requests refused by the rate limiter.
    pub rate_limited: u64,
    /// Read-deadline `408` closes.
    pub timeouts: u64,
    /// Silent idle keep-alive closes.
    pub idle_closed: u64,
    /// Write-deadline closes (client stopped reading its response).
    pub write_timeouts: u64,
    /// Accept-and-close sheds under file-descriptor exhaustion.
    pub accept_overflow: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejected_requests: self.rejected_requests.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            accept_overflow: self.accept_overflow.load(Ordering::Relaxed),
        }
    }

    /// The stats as the JSON object `/v1/stats` embeds under `"server"`.
    pub fn to_json(&self, event_loops: usize) -> JsonValue {
        let snapshot = self.snapshot();
        JsonValue::object([
            ("event_loops", JsonValue::from(event_loops)),
            ("accepted", JsonValue::from(snapshot.accepted)),
            (
                "rejected_connections",
                JsonValue::from(snapshot.rejected_connections),
            ),
            (
                "open_connections",
                JsonValue::from(snapshot.open_connections),
            ),
            ("requests", JsonValue::from(snapshot.requests)),
            (
                "rejected_requests",
                JsonValue::from(snapshot.rejected_requests),
            ),
            ("rate_limited", JsonValue::from(snapshot.rate_limited)),
            ("timeouts", JsonValue::from(snapshot.timeouts)),
            ("idle_closed", JsonValue::from(snapshot.idle_closed)),
            ("write_timeouts", JsonValue::from(snapshot.write_timeouts)),
            ("accept_overflow", JsonValue::from(snapshot.accept_overflow)),
        ])
    }
}

/// The `"server"` stats document: the aggregate counters plus one entry
/// per event loop — the placement gauges (`connections`, `inflight`), the
/// inbox backlog, and the wakeup-coalescing counters (`posted` messages vs
/// `wakeups` actually signalled; `coalesced` is the difference, i.e. posts
/// that found the loop awake and cost no syscall).
pub(crate) fn server_stats_json(stats: &ServerStats, loops: &[Arc<LoopShared>]) -> JsonValue {
    let mut json = stats.to_json(loops.len());
    if let JsonValue::Object(pairs) = &mut json {
        pairs.push((
            "loops".to_string(),
            JsonValue::array(loops.iter().map(|loop_shared| {
                let posted = loop_shared.posted.load(Ordering::Relaxed);
                let wakeups = loop_shared.wakeups.load(Ordering::Relaxed);
                JsonValue::object([
                    (
                        "connections",
                        JsonValue::from(loop_shared.connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "inflight",
                        JsonValue::from(loop_shared.inflight.load(Ordering::Relaxed)),
                    ),
                    ("inbox_depth", JsonValue::from(loop_shared.inbox_depth())),
                    ("posted", JsonValue::from(posted)),
                    ("wakeups", JsonValue::from(wakeups)),
                    ("coalesced", JsonValue::from(posted.saturating_sub(wakeups))),
                ])
            })),
        ));
    }
    json
}

/// What the event loops serve: a local worker frontend (the single-node
/// role) or the cluster gateway's router.
pub(crate) enum AppKind {
    /// Requests dispatch into the in-process worker.
    Local(Arc<Frontend>),
    /// Requests are answered locally (control plane) or forwarded to a
    /// cluster member over pooled upstream connections.
    Gateway(Arc<Router>),
}

/// State shared by every event loop, the accept path and the dispatcher's
/// completion callbacks.
pub(crate) struct Shared {
    pub(crate) app: AppKind,
    pub(crate) config: ServerConfig,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) limiter: Option<RateLimiter>,
    /// Set once by shutdown; loops observe it and drain.
    pub(crate) stopping: AtomicBool,
    /// Admission gauge: connections open plus in transit to a loop.
    pub(crate) active: AtomicUsize,
    /// The cross-thread half of each event loop, indexed by loop.
    pub(crate) loops: Vec<Arc<LoopShared>>,
}

/// A running network server: a non-blocking listener plus a small pool of
/// epoll event loops multiplexing every connection, all serving one
/// [`Frontend`].
///
/// ```no_run
/// use std::sync::Arc;
/// use dandelion_core::Frontend;
/// use dandelion_server::{Server, ServerConfig};
///
/// let worker = dandelion_apps::setup::demo_worker(4, false).unwrap();
/// let frontend = Arc::new(Frontend::new(worker));
/// let server = Server::start(ServerConfig::default(), frontend).unwrap();
/// println!("serving on http://{}", server.local_addr());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    frontend: Option<Arc<Frontend>>,
    router: Option<Arc<Router>>,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Validates `config`, binds `config.addr` and starts the event loops
    /// serving a local worker frontend.
    pub fn start(config: ServerConfig, frontend: Arc<Frontend>) -> io::Result<Server> {
        Server::start_inner(config, AppKind::Local(frontend))
    }

    /// Starts the server in **gateway mode**: the same event loops and
    /// connection state machines, but requests are routed across the
    /// cluster members known to `router` instead of a local worker. See
    /// the [`gateway`](crate::gateway) module docs for the topology.
    pub fn start_gateway(config: ServerConfig, router: Arc<Router>) -> io::Result<Server> {
        Server::start_inner(config, AppKind::Gateway(router))
    }

    fn start_inner(config: ServerConfig, app: AppKind) -> io::Result<Server> {
        config
            .validate()
            .map_err(|problem| io::Error::new(io::ErrorKind::InvalidInput, problem))?;
        dandelion_common::failpoint::init_from_env();
        let loop_count = config.resolved_event_loops();
        // Sharded accept: every loop gets its own `SO_REUSEPORT` listener
        // and the kernel load-balances incoming connections across them.
        // The first bind resolves an ephemeral port; the rest join its
        // accept group at the concrete address. Fallback mode binds one
        // listener, owned by loop 0, which places connections by load.
        let (addr, listeners) = if config.reuseport {
            let resolved = std::net::ToSocketAddrs::to_socket_addrs(&config.addr)?
                .next()
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("address {:?} resolved to nothing", config.addr),
                    )
                })?;
            let first = bind_reuseport(&resolved)?;
            let addr = first.local_addr()?;
            let mut listeners = vec![Some(first)];
            for _ in 1..loop_count {
                listeners.push(Some(bind_reuseport(&addr)?));
            }
            (addr, listeners)
        } else {
            let listener = TcpListener::bind(&config.addr)?;
            let addr = listener.local_addr()?;
            let mut listeners: Vec<Option<TcpListener>> = (0..loop_count).map(|_| None).collect();
            listeners[0] = Some(listener);
            (addr, listeners)
        };
        let stats = Arc::new(ServerStats::default());
        let loops = (0..loop_count)
            .map(|_| LoopShared::new().map(Arc::new))
            .collect::<io::Result<Vec<_>>>()?;
        let (frontend, router) = match &app {
            AppKind::Local(frontend) => (Some(Arc::clone(frontend)), None),
            AppKind::Gateway(router) => (None, Some(Arc::clone(router))),
        };
        let shared = Arc::new(Shared {
            app,
            limiter: config.rate_limit.map(RateLimiter::new),
            config: config.clone(),
            stats: Arc::clone(&stats),
            stopping: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            loops,
        });

        // Surface the serving-layer gauges through `GET /v1/stats` next to
        // the worker counters, including the per-loop placement gauges the
        // least-loaded accept path reads. The gateway merges the same
        // document into its own stats response.
        {
            let stats = Arc::clone(&stats);
            let loops = shared.loops.clone();
            let source = Arc::new(move || server_stats_json(&stats, &loops));
            match (&frontend, &router) {
                (Some(frontend), _) => frontend.add_stats_source("server", source),
                (_, Some(router)) => router.set_server_stats(source),
                _ => unreachable!("a server is local or gateway"),
            }
        }

        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut threads = Vec::with_capacity(loop_count);
        for (index, listener) in listeners.into_iter().enumerate() {
            let event_loop = EventLoop::new(index, Arc::clone(&shared), listener)?;
            // Pin inside the spawned thread: affinity is per thread, and a
            // pin failure (restrictive cpuset) degrades to an unpinned loop.
            let pin = config.pin_cores.then_some(index % cores);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dandelion-loop-{index}"))
                    .spawn(move || {
                        if let Some(core) = pin {
                            let _ = pin_thread_to_core(core);
                        }
                        event_loop.run()
                    })?,
            );
        }

        Ok(Server {
            addr,
            frontend,
            router,
            config,
            stats,
            shared,
            threads,
        })
    }

    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The frontend this server exposes.
    ///
    /// # Panics
    ///
    /// A gateway server has no local frontend; use [`Server::router`].
    pub fn frontend(&self) -> &Arc<Frontend> {
        self.frontend
            .as_ref()
            .expect("a gateway server has no local frontend")
    }

    /// The cluster router, when this server runs in gateway mode.
    pub fn router(&self) -> Option<&Arc<Router>> {
        self.router.as_ref()
    }

    /// Number of event-loop threads serving connections.
    pub fn event_loops(&self) -> usize {
        self.threads.len().max(self.shared.loops.len())
    }

    /// Snapshot of the serving-layer counters and gauges.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Gracefully shuts the server down: stop admitting connections, close
    /// idle keep-alives, let busy connections finish at their next response
    /// boundary (bounded by `drain_timeout`), then wait for in-flight
    /// invocations to drain.
    ///
    /// Returns `true` when the worker drained within the configured
    /// timeout. The worker itself is left running — it belongs to the
    /// caller, which may serve it elsewhere or shut it down.
    pub fn shutdown(mut self) -> bool {
        self.stop_and_join();
        match &self.frontend {
            Some(frontend) => frontend.worker().drain(self.config.drain_timeout),
            // A gateway holds no invocations of its own: once the loops
            // joined, every proxied exchange has settled or been failed.
            None => true,
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        for loop_shared in &self.shared.loops {
            loop_shared.wake();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        // A stopped server's gauges must disappear from `/v1/stats`: the
        // frontend outlives the server and may be served elsewhere.
        if let Some(frontend) = &self.frontend {
            frontend.remove_stats_source("server");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop_and_join();
        }
    }
}
