//! The TCP listener, handler pool and admission control.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use dandelion_core::Frontend;

use crate::config::ServerConfig;
use crate::conn::{handle_connection, overloaded_response, response_rope};

/// How often idle handler threads wake to check the stop flag.
const HANDLER_POLL: Duration = Duration::from_millis(25);

/// Monotonic counters of the serving layer (all relaxed; they feed
/// dashboards and tests, not control flow).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections admitted to the handler pool.
    pub accepted: AtomicU64,
    /// Connections refused by admission control (answered `503`).
    pub rejected_connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests rejected by the parser (`400`/`413`/`431`).
    pub rejected_requests: AtomicU64,
    /// Connections closed for stalling past the read deadline (`408`).
    pub timeouts: AtomicU64,
}

/// Point-in-time snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections admitted to the handler pool.
    pub accepted: u64,
    /// Connections refused by admission control.
    pub rejected_connections: u64,
    /// Requests served.
    pub requests: u64,
    /// Requests rejected by the parser.
    pub rejected_requests: u64,
    /// Read-deadline closes.
    pub timeouts: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejected_requests: self.rejected_requests.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A running network server: accept loop plus a fixed pool of
/// connection-handler threads, all serving one [`Frontend`].
///
/// ```no_run
/// use std::sync::Arc;
/// use dandelion_core::Frontend;
/// use dandelion_server::{Server, ServerConfig};
///
/// let worker = dandelion_apps::setup::demo_worker(4, false).unwrap();
/// let frontend = Arc::new(Frontend::new(worker));
/// let server = Server::start(ServerConfig::default(), frontend).unwrap();
/// println!("serving on http://{}", server.local_addr());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    frontend: Arc<Frontend>,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept loop and handler pool.
    pub fn start(config: ServerConfig, frontend: Arc<Frontend>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let active = Arc::new(AtomicUsize::new(0));
        // The channel holds admitted connections awaiting a free handler;
        // its capacity is the admission limit, so `try_send` never blocks.
        let (sender, receiver) = bounded::<TcpStream>(config.max_connections.max(1));

        let threads = config.resolved_threads();
        let mut handler_threads = Vec::with_capacity(threads);
        for index in 0..threads {
            let receiver = receiver.clone();
            let frontend = Arc::clone(&frontend);
            let config = config.clone();
            let stats = Arc::clone(&stats);
            let stopping = Arc::clone(&stopping);
            let active = Arc::clone(&active);
            handler_threads.push(
                std::thread::Builder::new()
                    .name(format!("dandelion-conn-{index}"))
                    .spawn(move || {
                        handler_loop(&receiver, &frontend, &config, &stats, &stopping, &active)
                    })?,
            );
        }

        let accept_thread = {
            let config = config.clone();
            let stats = Arc::clone(&stats);
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("dandelion-accept".to_string())
                .spawn(move || accept_loop(listener, sender, &config, &stats, &stopping, &active))?
        };

        Ok(Server {
            addr,
            frontend,
            config,
            stats,
            stopping,
            accept_thread: Some(accept_thread),
            handler_threads,
        })
    }

    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The frontend this server exposes.
    pub fn frontend(&self) -> &Arc<Frontend> {
        &self.frontend
    }

    /// Snapshot of the serving-layer counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Gracefully shuts the server down: stop admitting connections, let
    /// every handler finish (keep-alive connections close at their next
    /// response boundary), then wait for in-flight invocations to drain.
    ///
    /// Returns `true` when the worker drained within the configured
    /// timeout. The worker itself is left running — it belongs to the
    /// caller, which may serve it elsewhere or shut it down.
    pub fn shutdown(mut self) -> bool {
        self.stop_and_join();
        self.frontend.worker().drain(self.config.drain_timeout)
    }

    fn stop_and_join(&mut self) {
        self.stopping.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; it observes
        // the flag before admitting it. When the bind address is a
        // wildcard, loop back through localhost.
        let mut wake_addr = self.addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)).is_ok();
        if let Some(thread) = self.accept_thread.take() {
            if woke {
                let _ = thread.join();
            }
            // If the wake-up connect failed (firewalled bind address), the
            // accept thread is left parked in `accept` rather than hanging
            // shutdown on a join that can never finish; it exits with the
            // process. Handlers only depend on the stop flag, so they join
            // either way.
        }
        for thread in self.handler_threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    sender: Sender<TcpStream>,
    config: &ServerConfig,
    stats: &ServerStats,
    stopping: &AtomicBool,
    active: &AtomicUsize,
) {
    for stream in listener.incoming() {
        if stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else {
            // Accept failures (fd exhaustion under flood, transient
            // resets) must not busy-spin the accept thread at 100% CPU.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        // Admission control: `active` counts connections queued plus being
        // served; past the limit the client gets a 503 and a close instead
        // of unbounded queueing.
        if active.fetch_add(1, Ordering::AcqRel) >= config.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            reject(stream, stats, config);
            continue;
        }
        match sender.try_send(stream) {
            Ok(()) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                active.fetch_sub(1, Ordering::AcqRel);
                reject(stream, stats, config);
            }
        }
    }
}

/// Answers a refused connection with `503` before closing it.
fn reject(mut stream: TcpStream, stats: &ServerStats, config: &ServerConfig) {
    stats.rejected_connections.fetch_add(1, Ordering::Relaxed);
    let rope = response_rope(overloaded_response(config.max_connections), true);
    let _ = rope.write_to(&mut stream);
}

fn handler_loop(
    receiver: &Receiver<TcpStream>,
    frontend: &Frontend,
    config: &ServerConfig,
    stats: &ServerStats,
    stopping: &AtomicBool,
    active: &AtomicUsize,
) {
    loop {
        match receiver.recv_timeout(HANDLER_POLL) {
            Ok(stream) => {
                // A panic while serving must cost only that connection:
                // swallow the unwind so the handler thread survives, and
                // release the admission slot on every path.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, frontend, config, stats, stopping)
                }));
                active.fetch_sub(1, Ordering::AcqRel);
            }
            Err(RecvTimeoutError::Timeout) => {
                if stopping.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
