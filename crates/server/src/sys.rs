//! The handful of Linux syscalls the event loop needs, declared directly.
//!
//! No async runtime is vendored, and the readiness machinery required for
//! multiplexing thousands of connections over a few threads is tiny: an
//! epoll instance per event loop, an `eventfd` so other threads (the accept
//! path, the dispatcher's completion callbacks) can wake a loop, and
//! `setrlimit` so tests and benches can raise the open-file ceiling before
//! opening thousands of sockets. The `extern "C"` declarations below bind
//! those symbols from the platform libc; everything is wrapped in small
//! RAII types ([`Epoll`], [`EventFd`]) so the rest of the crate never sees
//! a raw file descriptor outside of registration calls.
//!
//! Linux-only by design (matching the runtime's `X86Linux` hardware
//! platform); the constants below are the stable Linux ABI values.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never registered.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never registered.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`): readiness is reported once per
/// transition instead of once per `epoll_wait` while it persists. The
/// connection pumps drain until `EWOULDBLOCK`, which removes every
/// re-arm `epoll_ctl` call from the hot path.
pub const EPOLLET: u32 = 1 << 31;
/// One-shot delivery (`EPOLLONESHOT`): the registration disarms after one
/// event until explicitly re-armed. Declared for completeness next to
/// [`EPOLLET`]; the event loops prefer edge-triggering, which needs no
/// re-arm syscall at all.
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const RLIMIT_NOFILE: c_int = 7;
const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0x800;
const SOCK_CLOEXEC: c_int = 0x80000;
const EINPROGRESS: i32 = 115;
/// Process file-descriptor table exhausted (`EMFILE`): the accept path
/// sheds load through its reserve descriptor instead of spinning.
pub(crate) const EMFILE: i32 = 24;
/// System-wide file table exhausted (`ENFILE`); handled like [`EMFILE`].
pub(crate) const ENFILE: i32 = 23;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
/// Pending-connection backlog for sharded listeners (clamped by the kernel
/// to `net.core.somaxconn`). Deliberately deeper than the std default of
/// 128: a connection storm aimed at one shard must queue, not drop SYNs.
const LISTEN_BACKLOG: c_int = 4096;
/// Size of the `cpu_set_t` affinity mask: 1024 CPUs, the Linux ABI default.
const CPU_SET_WORDS: usize = 16;

/// One readiness event, in the kernel's wire layout (packed on x86-64).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// `struct sockaddr_in`, in the kernel's wire layout (port and address in
/// network byte order).
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port: [u8; 2],
    addr: [u8; 4],
    zero: [u8; 8],
}

/// `struct sockaddr_in6` (`sin6_flowinfo` in network byte order,
/// `sin6_scope_id` in host order, per the Linux ABI).
#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    port: [u8; 2],
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(sockfd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(sockfd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
}

fn check(result: c_int) -> io::Result<c_int> {
    if result < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(result)
    }
}

/// An epoll instance: the readiness multiplexer one event loop blocks on.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        check(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) }).map(|_| ())
    }

    /// Registers `fd` for the given readiness `events` under `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest of `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest list (closing the fd does this too,
    /// but an explicit delete keeps already-queued events from referencing
    /// a recycled descriptor).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) and fills `events` with
    /// ready descriptors, returning how many. Interrupted waits report `0`
    /// ready events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let count = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if count < 0 {
            let error = io::Error::last_os_error();
            if error.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(error);
        }
        Ok(count as usize)
    }
}

/// A wakeup channel another thread can signal to interrupt an
/// [`Epoll::wait`]: registered in the loop's epoll set, written by the
/// accept path and by dispatcher completion callbacks.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The descriptor to register with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the owning loop. Signalling is best-effort and idempotent: the
    /// counter saturating (or any other failure) still leaves the loop
    /// readable, which is all a wakeup needs.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe {
            write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                8,
            )
        };
    }

    /// Clears pending wakeups so level-triggered polling goes quiet again.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut counter as *mut u64).cast::<c_void>(),
                8,
            )
        };
    }
}

/// Invokes `call` with the kernel wire encoding of `addr` (pointer plus
/// length), covering both address families.
fn with_sockaddr<R>(addr: &SocketAddr, call: impl FnOnce(*const c_void, u32) -> R) -> R {
    match addr {
        SocketAddr::V4(v4) => {
            let sockaddr = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be_bytes(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            call(
                (&sockaddr as *const SockAddrIn).cast::<c_void>(),
                std::mem::size_of::<SockAddrIn>() as u32,
            )
        }
        SocketAddr::V6(v6) => {
            let sockaddr = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be_bytes(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            call(
                (&sockaddr as *const SockAddrIn6).cast::<c_void>(),
                std::mem::size_of::<SockAddrIn6>() as u32,
            )
        }
    }
}

/// Initiates a TCP connect without ever blocking the caller: the socket is
/// created non-blocking and `connect` returns immediately (`EINPROGRESS`).
/// The caller registers the stream with an [`Epoll`]; the kernel reports a
/// successful connect as `EPOLLOUT` readiness and a failed one as
/// `EPOLLERR`/`EPOLLHUP` (and any read or write on the socket surfaces the
/// error). Event loops use this for upstream connections so the data path
/// never stalls on a slow member's handshake.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    dandelion_common::fail_point!("upstream/connect", |_fault| {
        Err(dandelion_common::failpoint::io_error("upstream/connect"))
    });
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = check(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // Wrap immediately so an early return cannot leak the descriptor.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let result = with_sockaddr(addr, |sockaddr, len| unsafe {
        connect(stream.as_raw_fd(), sockaddr, len)
    });
    if result < 0 {
        let error = io::Error::last_os_error();
        if error.raw_os_error() != Some(EINPROGRESS) {
            return Err(error);
        }
    }
    Ok(stream)
}

/// Binds a non-blocking `SO_REUSEPORT` TCP listener on `addr`.
///
/// Several listeners bound to the same address through this function form
/// one kernel-load-balanced accept group: each incoming connection is
/// delivered to exactly one of them (hashed by flow), which is what lets
/// every event loop own a listener of its own instead of funnelling all
/// admissions through loop 0. `SO_REUSEADDR` is set too, matching the std
/// listener's behaviour across restarts.
pub fn bind_reuseport(addr: &SocketAddr) -> io::Result<TcpListener> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = check(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // Wrap immediately so an early return cannot leak the descriptor.
    let listener = unsafe { TcpListener::from_raw_fd(fd) };
    for option in [SO_REUSEADDR, SO_REUSEPORT] {
        let enable: c_int = 1;
        check(unsafe {
            setsockopt(
                listener.as_raw_fd(),
                SOL_SOCKET,
                option,
                (&enable as *const c_int).cast::<c_void>(),
                std::mem::size_of::<c_int>() as u32,
            )
        })?;
    }
    let bound = with_sockaddr(addr, |sockaddr, len| unsafe {
        bind(listener.as_raw_fd(), sockaddr, len)
    });
    check(bound)?;
    check(unsafe { listen(listener.as_raw_fd(), LISTEN_BACKLOG) })?;
    Ok(listener)
}

/// Pins the calling thread to `core` (modulo the CPUs the mask can name).
///
/// Event loops opt into this via `--pin-cores`: a pinned loop keeps its
/// connections' pool allocations, slab and decoder buffers on one core's
/// cache hierarchy instead of migrating them on every reschedule. Failure
/// (e.g. a cpuset that excludes the core) is reported, not fatal — the
/// caller degrades to an unpinned loop.
pub fn pin_thread_to_core(core: usize) -> io::Result<()> {
    let mut mask = [0u64; CPU_SET_WORDS];
    let bit = core % (CPU_SET_WORDS * 64);
    mask[bit / 64] = 1u64 << (bit % 64);
    check(unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) }).map(|_| ())
}

/// Raises the process's soft open-file limit to at least `want` descriptors,
/// returning the resulting soft limit. When `want` exceeds even the hard
/// limit, a privileged process (tests run as root in CI containers) gets the
/// hard limit raised too; an unprivileged one is capped at its hard limit —
/// callers that open huge socket herds size them to the returned value.
/// Tests and benches that open thousands of loopback sockets call this first
/// so a conservative default `ulimit -n` does not fail them spuriously.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut limit = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    check(unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) })?;
    if limit.rlim_cur >= want {
        return Ok(limit.rlim_cur);
    }
    if limit.rlim_max < want {
        // Best effort: raising the hard limit needs CAP_SYS_RESOURCE.
        let raised = RLimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
    }
    limit.rlim_cur = want.min(limit.rlim_max);
    check(unsafe { setrlimit(RLIMIT_NOFILE, &limit) })?;
    Ok(limit.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_wakes_an_epoll_wait_and_drains_quiet() {
        let epoll = Epoll::new().unwrap();
        let waker = EventFd::new().unwrap();
        epoll.add(waker.raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing signalled: the wait times out empty.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        waker.signal();
        waker.signal();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        waker.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_flows_through_epoll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(served.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "idle socket");

        client.write_all(b"ping").unwrap();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready, 1);
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, 42);
        assert_ne!(mask & EPOLLIN, 0);
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);

        // Interest can be switched to writability and deleted again.
        epoll.modify(served.as_raw_fd(), EPOLLOUT, 42).unwrap();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready, 1);
        let mask = events[0].events;
        assert_ne!(mask & EPOLLOUT, 0);
        epoll.delete(served.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nonblocking_connect_completes_via_epoll_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = connect_nonblocking(&listener.local_addr().unwrap()).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(stream.as_raw_fd(), EPOLLOUT, 9).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready, 1, "loopback connect must complete");
        let mask = events[0].events;
        assert_ne!(mask & EPOLLOUT, 0, "success is reported as writability");
        assert_eq!(mask & (EPOLLERR | EPOLLHUP), 0);
        // The connected socket really works end to end.
        let (mut served, _) = listener.accept().unwrap();
        let mut client = stream;
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 5);
    }

    #[test]
    fn nofile_limit_is_raised_monotonically() {
        let current = raise_nofile_limit(64).unwrap();
        assert!(current >= 64);
        // Asking again for less never lowers it.
        assert!(raise_nofile_limit(1).unwrap() >= current.min(64));
    }

    #[test]
    fn reuseport_listeners_share_one_address_and_both_accept() {
        let first = bind_reuseport(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        // A second listener on the *same* bound port succeeds only because
        // both are in the reuseport group.
        let second = bind_reuseport(&addr).unwrap();
        for listener in [&first, &second] {
            listener.set_nonblocking(true).unwrap();
        }
        // Drive enough connections through the pair that the kernel's flow
        // hash spreads them; every one must be accepted by exactly one
        // listener.
        const CONNECTIONS: usize = 64;
        let mut clients = Vec::new();
        for _ in 0..CONNECTIONS {
            clients.push(TcpStream::connect(addr).unwrap());
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let (mut on_first, mut on_second) = (0usize, 0usize);
        while on_first + on_second < CONNECTIONS {
            assert!(
                std::time::Instant::now() < deadline,
                "only {} of {CONNECTIONS} connections accepted",
                on_first + on_second
            );
            match first.accept() {
                Ok(_) => on_first += 1,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(error) => panic!("first listener: {error}"),
            }
            match second.accept() {
                Ok(_) => on_second += 1,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(error) => panic!("second listener: {error}"),
            }
        }
        assert_eq!(on_first + on_second, CONNECTIONS);
    }

    #[test]
    fn edge_triggered_events_fire_once_per_arrival_not_per_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(
                served.as_raw_fd(),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                5,
            )
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Registration reports current readiness once (the socket is
        // writable); with no new transition, a second wait stays silent —
        // the level-triggered behaviour would report EPOLLOUT forever.
        assert_eq!(epoll.wait(&mut events, 100).unwrap(), 1);
        let mask = events[0].events;
        assert_ne!(mask & EPOLLOUT, 0);
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no second edge");

        // New data is a new edge...
        client.write_all(b"ping").unwrap();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready, 1);
        let mask = events[0].events;
        assert_ne!(mask & EPOLLIN, 0);
        // ...and without draining the socket, no further edge arrives even
        // though bytes are still buffered: the pump must read to
        // `EWOULDBLOCK`, exactly what the connection state machines do.
        assert_eq!(epoll.wait(&mut events, 50).unwrap(), 0);
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);
        client.write_all(b"pong").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1, "fresh edge");
    }

    #[test]
    fn pinning_the_current_thread_is_accepted() {
        // Core 0 always exists; the call must succeed (or at minimum not
        // corrupt the thread) and the thread keeps running afterwards.
        std::thread::spawn(|| {
            pin_thread_to_core(0).expect("pin to core 0");
            // A core the machine does not have is a clean error (callers
            // degrade to an unpinned loop), never a panic.
            let _ = pin_thread_to_core(1023);
        })
        .join()
        .unwrap();
    }
}
