//! Failpoint-driven chaos through a real gateway and real member workers.
//!
//! Each test stands up the cluster over loopback sockets, turns on a
//! failpoint (`upstream/write`, `upstream/read`, `gateway/probe`,
//! `engine/reply`), hammers it with concurrent clients, and asserts the
//! robustness contract: every request gets exactly one response (nothing
//! lost, nothing duplicated), error counters reconcile with what the
//! clients saw, and once the fault clears the cluster heals on its own —
//! ejected members are re-admitted and circuits re-close.
//!
//! The failpoint registry is process-global, so every test takes the
//! [`serial`] guard and clears the registry on entry and exit — the suite
//! is safe under the default parallel test runner.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dandelion_common::failpoint::{self, FailAction};
use dandelion_common::JsonValue;
use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_core::Frontend;
use dandelion_http::HttpRequest;
use dandelion_server::{GatewayConfig, HttpClientConnection, Router, Server, ServerConfig};

/// Serializes the tests and guarantees a clean failpoint registry around
/// each one, even when an assertion fails mid-test.
fn serial() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::clear();
    guard
}

struct ClearOnDrop;

impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

/// A member worker with the `Echo` function and `EchoComp` registered.
fn echo_worker() -> Arc<WorkerNode> {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};
    let config = WorkerConfig {
        total_cores: 2,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
    worker
        .register_function(FunctionArtifact::new(
            "Echo",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("echo", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition EchoComp(Input) => Output { Echo(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    worker
}

fn loopback_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        event_loops: 2,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn start_member() -> (Server, Arc<WorkerNode>) {
    let worker = echo_worker();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = Server::start(loopback_config(), frontend).expect("member binds");
    (server, worker)
}

fn test_gateway_config() -> GatewayConfig {
    GatewayConfig {
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    }
}

fn start_gateway(config: GatewayConfig, members: &[SocketAddr]) -> (Server, Arc<Router>) {
    let router = Router::start(config);
    for addr in members {
        router.join(*addr).expect("member joins");
    }
    let server =
        Server::start_gateway(loopback_config(), Arc::clone(&router)).expect("gateway binds");
    (server, router)
}

fn connect(addr: SocketAddr) -> HttpClientConnection {
    HttpClientConnection::connect(addr, Duration::from_secs(10)).expect("client connects")
}

fn gateway_stats(addr: SocketAddr) -> JsonValue {
    let mut client = connect(addr);
    let response = client.request(&HttpRequest::get("/v1/stats")).unwrap();
    assert_eq!(response.status.0, 200);
    JsonValue::parse(&response.body_text()).expect("stats JSON")
}

/// Member states from the gateway's membership document.
fn member_states(addr: SocketAddr) -> Vec<String> {
    let mut client = connect(addr);
    let response = client
        .request(&HttpRequest::get("/v1/cluster/members"))
        .unwrap();
    assert_eq!(response.status.0, 200);
    JsonValue::parse(&response.body_text())
        .expect("members JSON")
        .get("members")
        .and_then(JsonValue::as_array)
        .expect("members array")
        .iter()
        .map(|member| {
            member
                .get("state")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        })
        .collect()
}

/// Waits out a condition with a hard deadline; chaos recovery is
/// asynchronous (probe cadence, backoff timers) so polling is the only
/// honest way to observe it.
fn wait_for(what: &str, deadline: Duration, mut condition: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if condition() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out after {deadline:?} waiting for {what}");
}

/// One client's view of one invocation: the payload it sent, the status
/// it got back, and the body.
struct Outcome {
    payload: String,
    status: u16,
    body: String,
}

/// Fires `threads × per_thread` invocations at the gateway, each with a
/// unique payload, each on its own connection. A request that never gets
/// a response fails the test here (the client read times out) — that IS
/// the zero-lost assertion.
fn blast(addr: SocketAddr, threads: usize, per_thread: usize) -> Vec<Outcome> {
    let handles: Vec<_> = (0..threads)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let mut outcomes = Vec::with_capacity(per_thread);
                for index in 0..per_thread {
                    let payload = format!("chaos-{thread}-{index}");
                    let response = client
                        .request(&HttpRequest::post(
                            "/v1/invoke/EchoComp",
                            payload.clone().into_bytes(),
                        ))
                        .unwrap_or_else(|error| {
                            panic!("request {payload} lost its response: {error:?}")
                        });
                    outcomes.push(Outcome {
                        payload,
                        status: response.status.0,
                        body: response.body_text(),
                    });
                    // A faulted exchange may have closed this connection
                    // from the gateway side; reconnect and keep going.
                    if response.headers.get("connection") == Some("close") {
                        client = connect(addr);
                    }
                }
                outcomes
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|handle| handle.join().expect("client thread survives"))
        .collect()
}

/// Every outcome is a definitive answer: a `200` that echoes its own
/// payload (exactly-once, no cross-wiring) or one of the expected fault
/// statuses — anything else (a timeout, a half-written body, a foreign
/// payload) is a lost or duplicated result.
fn assert_exactly_once(
    outcomes: &[Outcome],
    expected: usize,
    fault_statuses: &[u16],
) -> (usize, usize) {
    assert_eq!(outcomes.len(), expected, "every request answered once");
    let mut ok = 0;
    let mut faulted = 0;
    for outcome in outcomes {
        if outcome.status == 200 {
            assert_eq!(
                outcome.body, outcome.payload,
                "a 200 must echo its own payload — anything else is a \
                 duplicated or cross-wired result"
            );
            ok += 1;
        } else {
            assert!(
                fault_statuses.contains(&outcome.status),
                "unexpected status for {}: {} ({})",
                outcome.payload,
                outcome.status,
                outcome.body
            );
            faulted += 1;
        }
    }
    (ok, faulted)
}

/// After the fault clears the cluster must heal by itself: probes
/// re-admit ejected members, a probe success half-opens the circuit and a
/// delivered response re-closes it. Proven by traffic flowing again.
fn wait_until_serving(addr: SocketAddr) {
    wait_for(
        "the cluster to serve 200s again",
        Duration::from_secs(10),
        || {
            let mut client = connect(addr);
            client
                .request(&HttpRequest::post(
                    "/v1/invoke/EchoComp",
                    b"recovery".to_vec(),
                ))
                .map(|response| response.status.0 == 200 && response.body_text() == "recovery")
                .unwrap_or(false)
        },
    );
}

fn shutdown(gateway: Server, members: Vec<(Server, Arc<WorkerNode>)>) {
    assert!(gateway.shutdown(), "gateway drains cleanly");
    for (server, worker) in members {
        server.shutdown();
        worker.shutdown();
    }
}

#[test]
fn upstream_write_faults_never_lose_or_cross_wire_responses() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    let members: Vec<_> = (0..2).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members.iter().map(|(s, _)| s.local_addr()).collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();
    wait_until_serving(gateway_addr);

    failpoint::set_seed(0xC0FFEE);
    failpoint::configure("upstream/write", FailAction::Error, 0.25);
    let outcomes = blast(gateway_addr, 4, 25);
    let (ok, _faulted) = assert_exactly_once(&outcomes, 100, &[502, 503]);
    assert!(ok > 0, "some requests must get through the write chaos");
    assert!(
        failpoint::hits("upstream/write") > 0,
        "the failpoint must actually have fired"
    );

    // Counters reconcile with what the clients saw: every 502 a client
    // counted is an upstream error the gateway counted (503s are
    // `no_members` rejections, not upstream errors), every 200 was
    // proxied, and the active failpoint rides in the stats document.
    let bad_gateway = outcomes.iter().filter(|o| o.status == 502).count();
    let stats = gateway_stats(gateway_addr);
    let upstream_errors = stats
        .get("upstream_errors")
        .and_then(JsonValue::as_u64)
        .expect("upstream_errors counter");
    assert!(
        upstream_errors >= bad_gateway as u64,
        "gateway saw {upstream_errors} upstream errors, clients saw {bad_gateway} 502s"
    );
    let proxied = stats
        .get("proxied")
        .and_then(JsonValue::as_u64)
        .expect("proxied counter");
    assert!(proxied >= ok as u64, "proxied = {proxied}, 200s = {ok}");
    assert!(
        stats.get("failpoints").is_some(),
        "active failpoint hit counters surface in /v1/stats"
    );

    failpoint::clear();
    wait_until_serving(gateway_addr);
    shutdown(gateway, members);
}

#[test]
fn truncated_upstream_responses_fail_clean_and_the_cluster_recovers() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    let members: Vec<_> = (0..2).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members.iter().map(|(s, _)| s.local_addr()).collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();
    wait_until_serving(gateway_addr);

    // `upstream/read` cuts the member's response off mid-stream: the
    // gateway must treat the connection as dead and answer the affected
    // exchanges with a clean 502, never a half-written body.
    failpoint::set_seed(0xFEED);
    failpoint::configure("upstream/read", FailAction::Error, 0.2);
    let outcomes = blast(gateway_addr, 2, 20);
    let (ok, _faulted) = assert_exactly_once(&outcomes, 40, &[502, 503]);
    assert!(ok > 0, "some requests must survive truncation chaos");
    assert!(
        failpoint::hits("upstream/read") > 0,
        "the failpoint must actually have fired"
    );

    failpoint::clear();
    wait_until_serving(gateway_addr);
    shutdown(gateway, members);
}

#[test]
fn probe_blackout_ejects_members_and_recovering_probes_readmit_them() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    let members: Vec<_> = (0..2).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members.iter().map(|(s, _)| s.local_addr()).collect();
    let (gateway, router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();
    wait_until_serving(gateway_addr);

    // Every probe fails: consecutive failures must eject both members.
    failpoint::configure("gateway/probe", FailAction::Error, 1.0);
    wait_for("both members ejected", Duration::from_secs(10), || {
        member_states(gateway_addr)
            .iter()
            .all(|state| state == "ejected")
    });

    // With no routable member the gateway answers a retryable 503, it
    // does not hang or crash.
    let mut client = connect(gateway_addr);
    let response = client
        .request(&HttpRequest::post("/v1/invoke/EchoComp", b"x".to_vec()))
        .unwrap();
    assert_eq!(response.status.0, 503, "got: {}", response.body_text());
    assert!(response.body_text().contains("no_members"));
    drop(client);

    // The blackout lifts: succeeding probes re-admit the members and
    // traffic flows again without any operator action.
    failpoint::clear();
    wait_for("both members re-admitted", Duration::from_secs(10), || {
        member_states(gateway_addr)
            .iter()
            .all(|state| state == "healthy")
    });
    wait_until_serving(gateway_addr);

    let stats = gateway_stats(gateway_addr);
    for (counter, floor) in [("ejections", 2), ("readmissions", 2)] {
        let value = stats.get(counter).and_then(JsonValue::as_u64).unwrap();
        assert!(value >= floor, "{counter} = {value}, expected >= {floor}");
    }
    drop(router);
    shutdown(gateway, members);
}

#[test]
fn engine_panics_behind_the_gateway_neither_lose_nor_duplicate_results() {
    let _guard = serial();
    let _clear = ClearOnDrop;
    let members: Vec<_> = (0..1).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members.iter().map(|(s, _)| s.local_addr()).collect();
    let worker = Arc::clone(&members[0].1);
    // The chaos run kills engines faster than the default budget expects;
    // raise it so the test exercises respawn, not budget exhaustion.
    worker.compute_pool().set_restart_budget(10_000);
    worker.communication_pool().set_restart_budget(10_000);
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();
    wait_until_serving(gateway_addr);

    // An engine panics after computing but before delivering its reply:
    // supervision must requeue the task once (so most requests still get
    // their 200) and a task whose retry also dies fails exactly once with
    // an engine-fault 500 — never silently, never twice.
    failpoint::set_seed(0xDEAD);
    failpoint::configure("engine/reply", FailAction::Panic, 0.3);
    let outcomes = blast(gateway_addr, 2, 20);
    let (ok, _faulted) = assert_exactly_once(&outcomes, 40, &[500]);
    assert!(ok > 0, "most requests must survive one engine death");

    failpoint::clear();

    let deaths =
        worker.compute_pool().engine_deaths() + worker.communication_pool().engine_deaths();
    let respawns =
        worker.compute_pool().engine_respawns() + worker.communication_pool().engine_respawns();
    assert!(deaths > 0, "the panic failpoint must have killed engines");
    assert_eq!(
        respawns, deaths,
        "every dead engine is replaced while the budget lasts"
    );

    // The pool healed: sustained traffic is all-200 again.
    wait_until_serving(gateway_addr);
    let calm = blast(gateway_addr, 2, 5);
    let (calm_ok, _) = assert_exactly_once(&calm, 10, &[500]);
    assert_eq!(calm_ok, 10, "no residual faults once the failpoint is off");
    shutdown(gateway, members);
}
