//! Cluster gateway integration tests over real sockets: routing with the
//! `X-Dandelion-Node` stamp, registration broadcast, member failure under
//! load (ejection + survivors), owner-routed polls, draining, and the
//! zero-copy proxy invariant.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::JsonValue;
use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_core::Frontend;
use dandelion_http::HttpRequest;
use dandelion_server::{GatewayConfig, HttpClientConnection, Router, Server, ServerConfig};

/// A member worker with the `Echo` function and `EchoComp` registered.
fn echo_worker() -> Arc<WorkerNode> {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    use dandelion_isolation::{FunctionArtifact, FunctionCtx};
    let config = WorkerConfig {
        total_cores: 2,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
    worker
        .register_function(FunctionArtifact::new(
            "Echo",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("echo", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition EchoComp(Input) => Output { Echo(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    worker
}

fn loopback_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        event_loops: 2,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

/// One cluster member: worker + frontend + server on an ephemeral port.
fn start_member() -> (Server, Arc<WorkerNode>) {
    let worker = echo_worker();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = Server::start(loopback_config(), frontend).expect("member binds");
    (server, worker)
}

/// Probe cadence short enough that ejection and drain-removal happen well
/// inside a test's patience.
fn test_gateway_config() -> GatewayConfig {
    GatewayConfig {
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    }
}

fn start_gateway(config: GatewayConfig, members: &[SocketAddr]) -> (Server, Arc<Router>) {
    let router = Router::start(config);
    for addr in members {
        router.join(*addr).expect("member joins");
    }
    let server =
        Server::start_gateway(loopback_config(), Arc::clone(&router)).expect("gateway binds");
    (server, router)
}

fn connect(addr: SocketAddr) -> HttpClientConnection {
    HttpClientConnection::connect(addr, Duration::from_secs(10)).expect("client connects")
}

/// `node-id → addr` rows from the gateway's membership document.
fn member_table(gateway: SocketAddr) -> Vec<(String, SocketAddr, String)> {
    let mut client = connect(gateway);
    let response = client
        .request(&HttpRequest::get("/v1/cluster/members"))
        .unwrap();
    assert_eq!(response.status.0, 200);
    let document = JsonValue::parse(&response.body_text()).expect("members JSON");
    document
        .get("members")
        .and_then(JsonValue::as_array)
        .expect("members array")
        .iter()
        .map(|member| {
            (
                member
                    .get("node")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
                member
                    .get("addr")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .parse()
                    .unwrap(),
                member
                    .get("state")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
            )
        })
        .collect()
}

#[test]
fn gateway_routes_invocations_and_stamps_the_answering_node() {
    let members: Vec<(Server, Arc<WorkerNode>)> = (0..3).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members
        .iter()
        .map(|(server, _)| server.local_addr())
        .collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);

    let mut client = connect(gateway.local_addr());
    let health = client.request(&HttpRequest::get("/healthz")).unwrap();
    assert_eq!(health.status.0, 200);
    assert_eq!(health.body_text(), "ok");

    // The membership document sees all three members healthy.
    let table = member_table(gateway.local_addr());
    assert_eq!(table.len(), 3);
    assert!(table.iter().all(|(_, _, state)| state == "healthy"));

    // The composition list is the union of what the members advertise.
    let listed = client
        .request(&HttpRequest::get("/v1/compositions"))
        .unwrap();
    assert!(listed.body_text().contains("EchoComp"));

    // Invocations proxy through with the answering node stamped, and the
    // composition-affinity routing keeps them on one member.
    let mut nodes_seen = Vec::new();
    for index in 0..12 {
        let payload = format!("payload-{index}");
        let response = client
            .request(&HttpRequest::post(
                "/v1/invoke/EchoComp",
                payload.clone().into_bytes(),
            ))
            .unwrap();
        assert_eq!(response.status.0, 200, "got: {}", response.body_text());
        assert_eq!(response.body_text(), payload);
        let node = response
            .headers
            .get("x-dandelion-node")
            .expect("proxied responses carry the answering node")
            .to_string();
        nodes_seen.push(node);
    }
    assert!(
        nodes_seen.iter().all(|node| node == &nodes_seen[0]),
        "affinity must keep EchoComp on one member, saw {nodes_seen:?}"
    );

    // The gateway's stats document reports its role and the proxy counter.
    let stats = client.request(&HttpRequest::get("/v1/stats")).unwrap();
    let document = JsonValue::parse(&stats.body_text()).expect("stats JSON");
    assert_eq!(
        document.get("role").and_then(JsonValue::as_str),
        Some("gateway")
    );
    let proxied = document
        .get("proxied")
        .and_then(JsonValue::as_u64)
        .expect("proxied counter");
    assert!(proxied >= 12, "proxied = {proxied}");
    assert!(
        document.get("server").is_some(),
        "serving-layer gauges ride in the gateway stats"
    );

    assert!(gateway.shutdown(), "gateway drains cleanly");
    for (server, worker) in members {
        server.shutdown();
        worker.shutdown();
    }
}

#[test]
fn composition_registration_broadcasts_to_every_member() {
    let members: Vec<(Server, Arc<WorkerNode>)> = (0..2).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members
        .iter()
        .map(|(server, _)| server.local_addr())
        .collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);

    let dsl =
        "composition GatewayComp(Input) => Output { Echo(In = all Input) => (Output = Out); }";
    let mut client = connect(gateway.local_addr());
    let created = client
        .request(&HttpRequest::post(
            "/v1/compositions",
            dsl.as_bytes().to_vec(),
        ))
        .unwrap();
    assert_eq!(created.status.0, 201, "got: {}", created.body_text());
    assert!(created.body_text().contains("GatewayComp"));
    assert!(created.body_text().contains("\"nodes\":2"));

    // Every member really holds the composition (not just the table).
    for addr in &addrs {
        let mut member = connect(*addr);
        let listed = member
            .request(&HttpRequest::get("/v1/compositions"))
            .unwrap();
        assert!(
            listed.body_text().contains("GatewayComp"),
            "member {addr} did not register the broadcast composition"
        );
    }

    // And the gateway can invoke it immediately — the advertisement did not
    // wait for the next health probe.
    let response = client
        .request(&HttpRequest::post(
            "/v1/invoke/GatewayComp",
            b"broadcast".to_vec(),
        ))
        .unwrap();
    assert_eq!(response.status.0, 200, "got: {}", response.body_text());
    assert_eq!(response.body_text(), "broadcast");

    gateway.shutdown();
    for (server, worker) in members {
        server.shutdown();
        worker.shutdown();
    }
}

/// Kill one of three members under live load: the health checker ejects it
/// within its window, the survivors keep serving, and the only errors are
/// the bounded set of exchanges already in flight toward the dead node.
#[test]
fn killing_a_member_under_load_ejects_it_and_survivors_keep_serving() {
    let mut members: Vec<Option<(Server, Arc<WorkerNode>)>> =
        (0..3).map(|_| Some(start_member())).collect();
    let addrs: Vec<SocketAddr> = members
        .iter()
        .map(|member| member.as_ref().unwrap().0.local_addr())
        .collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();

    // Find the member the affinity routing sends EchoComp to — killing that
    // one guarantees the failure path actually runs under load.
    let mut probe = connect(gateway_addr);
    let first = probe
        .request(&HttpRequest::post("/v1/invoke/EchoComp", b"probe".to_vec()))
        .unwrap();
    assert_eq!(first.status.0, 200);
    let victim_node = first
        .headers
        .get("x-dandelion-node")
        .expect("node stamp")
        .to_string();
    let victim_addr = member_table(gateway_addr)
        .into_iter()
        .find(|(node, _, _)| *node == victim_node)
        .map(|(_, addr, _)| addr)
        .expect("the answering node is in the member table");

    // Live load from four keep-alive clients; transport failures reconnect.
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let unexpected = Arc::new(AtomicU64::new(0));
    let load_threads: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            let unexpected = Arc::clone(&unexpected);
            std::thread::spawn(move || {
                let mut client = connect(gateway_addr);
                while !stop.load(Ordering::Relaxed) {
                    match client.request(&HttpRequest::post(
                        "/v1/invoke/EchoComp",
                        b"under-load".to_vec(),
                    )) {
                        Ok(response) => match response.status.0 {
                            200 => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            502 | 503 => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                unexpected.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            // The transport died (e.g. the gateway closed the
                            // connection); a real client reconnects.
                            client = connect(gateway_addr);
                        }
                    }
                }
            })
        })
        .collect();

    // Let load build, then kill the victim abruptly mid-traffic.
    std::thread::sleep(Duration::from_millis(200));
    let index = addrs
        .iter()
        .position(|addr| *addr == victim_addr)
        .expect("victim is one of the members");
    let (victim_server, victim_worker) = members[index].take().unwrap();
    victim_server.shutdown();
    victim_worker.shutdown();

    // The health checker must eject the victim within its window (50 ms
    // probes, 3 consecutive failures — the 10 s deadline is pure slack).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let state = member_table(gateway_addr)
            .into_iter()
            .find(|(node, _, _)| *node == victim_node)
            .map(|(_, _, state)| state);
        if state.as_deref() == Some("ejected") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim never ejected, state = {state:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for thread in load_threads {
        thread.join().unwrap();
    }

    // Survivors serve everything after the ejection, and never as the dead
    // node.
    let mut client = connect(gateway_addr);
    for _ in 0..20 {
        let response = client
            .request(&HttpRequest::post(
                "/v1/invoke/EchoComp",
                b"survivor".to_vec(),
            ))
            .unwrap();
        assert_eq!(response.status.0, 200, "got: {}", response.body_text());
        assert_ne!(
            response.headers.get("x-dandelion-node"),
            Some(victim_node.as_str()),
            "the ejected member must receive no new work"
        );
    }

    // Only requests in flight toward the dying node may have failed — a
    // bounded set, not a failure storm; everything else succeeded.
    let ok = ok.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    assert_eq!(unexpected.load(Ordering::Relaxed), 0);
    assert!(ok > 0, "load must have been served");
    assert!(
        failed <= 32,
        "failures must be bounded to in-flight exchanges, got {failed} (ok = {ok})"
    );

    // The ejection is visible in the gateway's stats.
    let stats = client.request(&HttpRequest::get("/v1/stats")).unwrap();
    let document = JsonValue::parse(&stats.body_text()).unwrap();
    let ejections = document
        .get("ejections")
        .and_then(JsonValue::as_u64)
        .expect("ejections counter");
    assert!(ejections >= 1);

    gateway.shutdown();
    for member in members.into_iter().flatten() {
        member.0.shutdown();
        member.1.shutdown();
    }
}

/// Submitted invocations are polled on the member that accepted them: the
/// gateway records the owner from the `202` and routes every status poll
/// for that id to the same node.
#[test]
fn polls_follow_the_member_that_accepted_the_submission() {
    let members: Vec<(Server, Arc<WorkerNode>)> = (0..3).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members
        .iter()
        .map(|(server, _)| server.local_addr())
        .collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);

    let mut client = connect(gateway.local_addr());
    for round in 0..6 {
        let submitted = client
            .request(&HttpRequest::post(
                "/v1/invocations/EchoComp",
                format!("submit-{round}").into_bytes(),
            ))
            .unwrap();
        assert_eq!(submitted.status.0, 202, "got: {}", submitted.body_text());
        let owner = submitted
            .headers
            .get("x-dandelion-node")
            .expect("202 carries the accepting node")
            .to_string();
        let document = JsonValue::parse(&submitted.body_text()).unwrap();
        let id = document
            .get("invocation_id")
            .and_then(JsonValue::as_str)
            .expect("submission returns an invocation id")
            .to_string();

        // Poll to a terminal status: every poll must answer from the owner
        // (only the accepting member holds the result).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let poll = client
                .request(&HttpRequest::get(format!("/v1/invocations/{id}")))
                .unwrap();
            assert_eq!(poll.status.0, 200, "got: {}", poll.body_text());
            assert_eq!(
                poll.headers.get("x-dandelion-node"),
                Some(owner.as_str()),
                "poll for {id} strayed from its owner"
            );
            let status = JsonValue::parse(&poll.body_text())
                .ok()
                .and_then(|doc| {
                    doc.get("status")
                        .and_then(JsonValue::as_str)
                        .map(String::from)
                })
                .expect("status document");
            if status == "completed" {
                break;
            }
            assert_ne!(status, "failed", "invocation failed: {}", poll.body_text());
            assert!(Instant::now() < deadline, "invocation {id} never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    gateway.shutdown();
    for (server, worker) in members {
        server.shutdown();
        worker.shutdown();
    }
}

/// `POST /v1/cluster/drain/{node}`: the member leaves rotation, the drain
/// is relayed so the worker itself refuses new work, and the health thread
/// removes the member once its in-flight work settles.
#[test]
fn draining_a_member_relays_the_signal_and_removes_it_once_idle() {
    let members: Vec<(Server, Arc<WorkerNode>)> = (0..2).map(|_| start_member()).collect();
    let addrs: Vec<SocketAddr> = members
        .iter()
        .map(|(server, _)| server.local_addr())
        .collect();
    let (gateway, _router) = start_gateway(test_gateway_config(), &addrs);
    let gateway_addr = gateway.local_addr();

    let table = member_table(gateway_addr);
    assert_eq!(table.len(), 2);
    let (drained_node, drained_addr, _) = table[0].clone();

    let mut client = connect(gateway_addr);
    let accepted = client
        .request(&HttpRequest::post(
            format!("/v1/cluster/drain/{drained_node}"),
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(accepted.status.0, 202, "got: {}", accepted.body_text());
    assert!(accepted.body_text().contains("\"draining\""));
    assert!(
        accepted.body_text().contains("\"relayed\":true"),
        "the drain must be relayed to the node: {}",
        accepted.body_text()
    );

    // The relay reached the worker: the drained member's own worker refuses
    // new invocations while the other keeps serving.
    let drained_worker = members
        .iter()
        .find(|(server, _)| server.local_addr() == drained_addr)
        .map(|(_, worker)| worker)
        .expect("drained member is one of ours");
    assert!(drained_worker.is_draining());

    // New work through the gateway always lands on the surviving member.
    for _ in 0..10 {
        let response = client
            .request(&HttpRequest::post(
                "/v1/invoke/EchoComp",
                b"rolling".to_vec(),
            ))
            .unwrap();
        assert_eq!(response.status.0, 200, "got: {}", response.body_text());
        assert_ne!(
            response.headers.get("x-dandelion-node"),
            Some(drained_node.as_str()),
            "a draining member must receive no new work"
        );
    }

    // With nothing in flight the health thread removes the drained member.
    let deadline = Instant::now() + Duration::from_secs(10);
    while member_table(gateway_addr).len() != 1 {
        assert!(
            Instant::now() < deadline,
            "drained member was never removed: {:?}",
            member_table(gateway_addr)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = client.request(&HttpRequest::get("/v1/stats")).unwrap();
    let document = JsonValue::parse(&stats.body_text()).unwrap();
    assert_eq!(document.get("drained").and_then(JsonValue::as_u64), Some(1));

    gateway.shutdown();
    for (server, worker) in members {
        server.shutdown();
        worker.shutdown();
    }
}

/// The zero-copy proxy invariant on the real decode path: a response body
/// decoded off the upstream wire and passed through [`proxy_response`]
/// keeps its buffer identity — the gateway never copies payloads between
/// the member socket and the client socket.
#[test]
fn proxied_response_bodies_keep_their_buffer_identity() {
    use dandelion_common::{NodeId, SharedBytes};
    use dandelion_http::{HttpResponse, ParseLimits, ResponseDecoder};
    use dandelion_server::gateway::proxy_response;

    let wire = HttpResponse::ok(b"member payload, by reference".to_vec())
        .with_header("Connection", "keep-alive")
        .to_bytes();
    let mut decoder = ResponseDecoder::new(ParseLimits::default());
    decoder.feed(&wire);
    let decoded = decoder
        .next_response()
        .expect("well-formed response")
        .expect("complete response");
    let body = decoded.body.clone();

    let proxied = proxy_response(decoded, NodeId::from_raw(3));
    assert_eq!(proxied.headers.get("x-dandelion-node"), Some("node-3"));
    assert!(proxied.headers.get("connection").is_none());
    assert!(
        SharedBytes::same_buffer(&proxied.body, &body),
        "the proxied body must be the decoder's buffer, not a copy"
    );
    assert_eq!(proxied.body.as_ref(), b"member payload, by reference");
}
