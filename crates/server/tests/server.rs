//! Socket-level tests of the serving layer: admission control, the read
//! deadline, malformed-request hardening and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_core::Frontend;
use dandelion_http::{HttpRequest, ParseLimits};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_server::{HttpClientConnection, Server, ServerConfig};

fn test_worker() -> Arc<WorkerNode> {
    use dandelion_common::config::{IsolationKind, WorkerConfig};
    let config = WorkerConfig {
        total_cores: 4,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
    worker
        .register_function(FunctionArtifact::new(
            "Echo",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("echo", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition EchoComp(Input) => Output { Echo(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    worker
}

fn start_server(config: ServerConfig) -> (Server, Arc<WorkerNode>) {
    let worker = test_worker();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = Server::start(config, frontend).expect("server binds");
    (server, worker)
}

fn loopback_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        event_loops: 2,
        read_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    }
}

#[test]
fn serves_health_and_sync_invoke_over_a_real_socket() {
    let (server, worker) = start_server(loopback_config());
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let health = client.request(&HttpRequest::get("/healthz")).unwrap();
    assert_eq!(health.status.0, 200);
    assert_eq!(health.body_text(), "ok");
    assert_eq!(health.headers.get("connection"), Some("keep-alive"));

    // Same connection, second request: keep-alive works.
    let invoke = client
        .request(&HttpRequest::post(
            "/v1/invoke/EchoComp",
            b"over the wire".to_vec(),
        ))
        .unwrap();
    assert_eq!(invoke.status.0, 200);
    assert_eq!(invoke.body_text(), "over the wire");
    assert_eq!(server.stats().requests, 2);
    assert!(server.shutdown(), "drains with nothing in flight");
    worker.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let (server, worker) = start_server(loopback_config());
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let response = client
        .request(&HttpRequest::get("/healthz").with_header("Connection", "close"))
        .unwrap();
    assert_eq!(response.headers.get("connection"), Some("close"));
    // The server closed its end: the next receive sees EOF.
    assert!(client.request(&HttpRequest::get("/healthz")).is_err());
    server.shutdown();
    worker.shutdown();
}

#[test]
fn malformed_requests_get_a_structured_400_and_a_close() {
    let (server, worker) = start_server(loopback_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"NOT-HTTP garbage\r\n\r\n").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap(); // EOF proves the close
    assert!(reply.starts_with("HTTP/1.1 400 Bad Request\r\n"));
    assert!(reply.contains("\"malformed_request\""));
    assert!(reply.contains("Connection: close\r\n"));
    assert_eq!(server.stats().rejected_requests, 1);
    server.shutdown();
    worker.shutdown();
}

#[test]
fn oversized_heads_and_bodies_get_431_and_413() {
    let config = ServerConfig {
        limits: ParseLimits {
            max_head_bytes: 512,
            max_body_bytes: 1024,
        },
        ..loopback_config()
    };
    let (server, worker) = start_server(config);

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "x".repeat(600)
    );
    stream.write_all(huge_header.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 431 "));
    assert!(reply.contains("\"headers_too_large\""));

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/invoke/EchoComp HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 413 "));
    assert!(reply.contains("\"body_too_large\""));
    server.shutdown();
    worker.shutdown();
}

#[test]
fn slow_clients_hit_the_read_deadline_with_a_408() {
    let (server, worker) = start_server(loopback_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half a request, then a stall longer than the 250 ms deadline.
    stream.write_all(b"GET /healthz HTT").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 408 "));
    assert!(reply.contains("\"read_timeout\""));
    assert_eq!(server.stats().timeouts, 1);

    // An *idle* keep-alive connection is closed silently instead.
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = String::new();
    idle.read_to_string(&mut reply).unwrap();
    assert!(reply.is_empty(), "idle close carries no response");
    server.shutdown();
    worker.shutdown();
}

#[test]
fn drip_feeding_bytes_cannot_reset_the_request_deadline() {
    let (server, worker) = start_server(loopback_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send one byte every 50 ms — each read succeeds, but the per-request
    // deadline (250 ms from the first byte) must still fire.
    let start = std::time::Instant::now();
    let writer = {
        let mut stream = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            for byte in b"GET /healthz HTTP/1.1\r\nHost: svc\r\n" {
                if stream.write_all(&[*byte]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 408 "), "got: {reply}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "the deadline must fire from the first byte, not the last read"
    );
    writer.join().unwrap();
    server.shutdown();
    worker.shutdown();
}

#[test]
fn admission_control_rejects_connections_past_the_limit() {
    let config = ServerConfig {
        max_connections: 2,
        event_loops: 1,
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    // Two idle keep-alive connections occupy the whole admission budget
    // (they cost the event loop memory only, but the cap is the cap).
    let hold_a = TcpStream::connect(server.local_addr()).unwrap();
    let hold_b = TcpStream::connect(server.local_addr()).unwrap();
    // Give the accept loop time to admit both before the third arrives.
    std::thread::sleep(Duration::from_millis(100));
    let mut rejected = TcpStream::connect(server.local_addr()).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = String::new();
    rejected.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 503 "), "got: {reply}");
    assert!(reply.contains("\"overloaded\""));
    assert!(reply.contains("\"retryable\":true"));
    assert_eq!(server.stats().rejected_connections, 1);
    drop(hold_a);
    drop(hold_b);
    server.shutdown();
    worker.shutdown();
}

/// Reads the kernel's thread count for this process (Linux procfs).
fn process_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|value| value.trim().parse().ok())
        .expect("procfs reports a thread count")
}

/// The tentpole invariant: two event-loop threads hold >= 1000 concurrently
/// open keep-alive connections — the process thread count stays flat while
/// connections scale, and sampled connections still serve requests.
#[test]
fn two_event_loops_sustain_a_thousand_open_connections() {
    const CONNECTIONS: usize = 1000;
    dandelion_server::sys::raise_nofile_limit(3 * CONNECTIONS as u64 + 256).unwrap();
    let config = ServerConfig {
        // Long deadlines so the held connections stay open for the whole
        // test; admission must clear the 1000 plus the sampling clients.
        read_timeout: Duration::from_secs(60),
        max_connections: CONNECTIONS + 64,
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    let threads_before = process_thread_count();

    let mut held = Vec::with_capacity(CONNECTIONS);
    for index in 0..CONNECTIONS {
        match TcpStream::connect(server.local_addr()) {
            Ok(stream) => held.push(stream),
            Err(error) => panic!("connection {index} refused: {error}"),
        }
    }
    // Connections pin no threads: the count is what it was at startup.
    assert_eq!(
        process_thread_count(),
        threads_before,
        "open connections must not grow the thread count"
    );
    // The gauge sees (at least) the held connections once the loops have
    // adopted them all.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (server.stats().open_connections as usize) < CONNECTIONS {
        assert!(
            std::time::Instant::now() < deadline,
            "only {} of {CONNECTIONS} connections adopted",
            server.stats().open_connections
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A sample of the held sockets serves real requests while the other
    // hundreds sit idle on the same two loops.
    for stream in held.iter_mut().step_by(100) {
        stream
            .write_all(b"POST /v1/invoke/EchoComp HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reply = [0u8; 4096];
        let mut filled = 0;
        while !reply[..filled].windows(5).any(|w| w == b"hello") {
            let n = stream.read(&mut reply[filled..]).unwrap();
            assert!(n > 0, "server closed mid-response");
            filled += n;
        }
        let text = String::from_utf8_lossy(&reply[..filled]);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
    }
    assert_eq!(process_thread_count(), threads_before);
    drop(held);
    assert!(server.shutdown());
    worker.shutdown();
}

/// Per-client rate limiting: a burst beyond the token bucket gets `429`
/// with the stable `rate_limited` code, the connection survives, and the
/// refusal is counted.
#[test]
fn rate_limited_clients_get_429_and_keep_their_connection() {
    use dandelion_server::RateLimit;
    let config = ServerConfig {
        rate_limit: Some(RateLimit {
            requests_per_sec: 1,
            burst: 3,
        }),
        // Longer than the refill wait below, so the idle close stays out of
        // this test's way.
        read_timeout: Duration::from_secs(10),
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let mut limited = 0;
    for _ in 0..6 {
        let response = client.request(&HttpRequest::get("/healthz")).unwrap();
        match response.status.0 {
            200 => {}
            429 => {
                limited += 1;
                assert!(response.body_text().contains("\"rate_limited\""));
                assert!(response.body_text().contains("\"retryable\":true"));
            }
            status => panic!("unexpected status {status}"),
        }
    }
    assert!(limited >= 2, "burst of 3 must cap 6 rapid requests");
    assert_eq!(server.stats().rate_limited, limited as u64);
    // The connection is still usable: wait for a refill token.
    std::thread::sleep(Duration::from_millis(1100));
    let ok = client.request(&HttpRequest::get("/healthz")).unwrap();
    assert_eq!(ok.status.0, 200);
    server.shutdown();
    worker.shutdown();
}

/// The serving-layer gauges ride inside `GET /v1/stats` under `"server"`,
/// and silent idle closes are observable.
#[test]
fn server_stats_are_exposed_through_v1_stats() {
    let (server, worker) = start_server(loopback_config());
    // One idle connection that will be closed silently (250 ms window).
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    // `TcpStream::connect` returns before the server's loop has accepted
    // the idle connection, so poll the gauge instead of trusting one
    // sample of the stats document.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let open = loop {
        let response = client.request(&HttpRequest::get("/v1/stats")).unwrap();
        assert_eq!(response.status.0, 200);
        let document =
            dandelion_common::JsonValue::parse(&response.body_text()).expect("stats body is JSON");
        let gauges = document.get("server").expect("server object present");
        assert!(gauges.get("accepted").is_some());
        assert!(gauges.get("rate_limited").is_some());
        let open = gauges
            .get("open_connections")
            .and_then(dandelion_common::JsonValue::as_u64)
            .expect("open_connections gauge");
        if open >= 2 || std::time::Instant::now() >= deadline {
            break open;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(open >= 2, "idle + client connection are open, got {open}");

    // The idle connection is closed silently and counted.
    let mut reply = String::new();
    idle.read_to_string(&mut reply).unwrap();
    assert!(reply.is_empty(), "idle close carries no response");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().idle_closed == 0 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    // The first client may have been idle-closed too by now (same 250 ms
    // window); fetch the updated document on a fresh connection.
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let response = client.request(&HttpRequest::get("/v1/stats")).unwrap();
    let document = dandelion_common::JsonValue::parse(&response.body_text()).unwrap();
    let reported = document
        .get("server")
        .and_then(|server| server.get("idle_closed"))
        .and_then(dandelion_common::JsonValue::as_u64)
        .expect("idle_closed gauge present");
    // More connections may idle out between the render and this check, so
    // bound rather than pin the value.
    assert!((1..=server.stats().idle_closed).contains(&reported));

    // After shutdown the gauges unregister: the frontend outlives the
    // server and must not report a dead server's numbers.
    let frontend = Arc::clone(server.frontend());
    server.shutdown();
    let stats = frontend.handle(&HttpRequest::get("/v1/stats"));
    let document = dandelion_common::JsonValue::parse(&stats.body_text()).unwrap();
    assert!(
        document.get("server").is_none(),
        "stopped server still reports gauges"
    );
    worker.shutdown();
}

/// A client that sends its request and immediately half-closes
/// (`shutdown(SHUT_WR)`) still gets its response: responses owed for
/// received requests drain before the connection closes on EOF.
#[test]
fn half_closed_clients_still_receive_their_responses() {
    let (server, worker) = start_server(loopback_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/invoke/EchoComp HTTP/1.1\r\nContent-Length: 7\r\n\r\nsend-wr")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
    assert!(reply.ends_with("send-wr"), "got: {reply}");
    server.shutdown();
    worker.shutdown();
}

/// Misconfiguration is a clear error from `Server::start`, not a panic.
#[test]
fn invalid_configs_are_rejected_at_start() {
    let worker = test_worker();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let bad = ServerConfig {
        max_connections: 0,
        ..loopback_config()
    };
    let error = match Server::start(bad, frontend) {
        Err(error) => error,
        Ok(_) => panic!("zero connections must be rejected"),
    };
    assert_eq!(error.kind(), std::io::ErrorKind::InvalidInput);
    assert!(error.to_string().contains("max_connections"));
    worker.shutdown();
}

/// A client that submits a request whose response it never reads cannot
/// pin buffers forever: once the response stops making progress for
/// `write_timeout`, the connection is closed silently and counted.
#[test]
fn stalled_readers_hit_the_write_deadline_and_are_closed() {
    const BODY_BYTES: usize = 8 * 1024 * 1024;
    let config = ServerConfig {
        write_timeout: Duration::from_millis(400),
        // Long read deadline: receiving the 8 MiB request must not race
        // the write-stall this test is about.
        read_timeout: Duration::from_secs(60),
        limits: ParseLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 2 * BODY_BYTES,
        },
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    // Cap the client's receive buffer so the kernel cannot absorb the whole
    // response on the reader's behalf: the 8 MiB echo must actually stall.
    shrink_recv_buffer(&stream);
    let mut stream = stream;
    let head = format!("POST /v1/invoke/EchoComp HTTP/1.1\r\nContent-Length: {BODY_BYTES}\r\n\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    let chunk = vec![0x5au8; 1024 * 1024];
    for _ in 0..BODY_BYTES / chunk.len() {
        stream.write_all(&chunk).unwrap();
    }
    // Never read. The write deadline must fire and count the close.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while server.stats().write_timeouts == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "write deadline never fired; stats = {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.stats().write_timeouts, 1);
    drop(stream);
    server.shutdown();
    worker.shutdown();
}

/// Clamps a socket's `SO_RCVBUF` so the kernel stops absorbing data for a
/// client that never reads (TCP auto-tuning would otherwise buffer tens of
/// megabytes on loopback and mask a write stall).
fn shrink_recv_buffer(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let size: i32 = 16 * 1024;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &size as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// `WorkerNode::begin_drain` under live pipelined traffic on a real
/// socket: already-submitted invocations complete with `200`, new ones are
/// refused with a retryable `503`, and `end_drain` restores service.
#[test]
fn worker_drain_completes_pipelined_invocations_over_real_sockets() {
    let worker = test_worker();
    worker
        .register_function(FunctionArtifact::new(
            "Slow",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                std::thread::sleep(Duration::from_millis(200));
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("slow", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition SlowComp(Input) => Output { Slow(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let config = ServerConfig {
        read_timeout: Duration::from_secs(10),
        ..loopback_config()
    };
    let server = Server::start(config, frontend).expect("server binds");

    // Pipeline three invocations on one connection without reading any
    // response, so all three are in flight when the drain signal rises.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for index in 0..3u8 {
        let body = format!("drain-{index}");
        let request = format!(
            "POST /v1/invoke/SlowComp HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(request.as_bytes()).unwrap();
    }
    // Let the pipelined requests reach the worker, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    worker.begin_drain();
    assert!(worker.is_draining());

    // New work is refused while draining — retryable, from the worker.
    let mut late =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let refused = late
        .request(&HttpRequest::post("/v1/invoke/SlowComp", b"late".to_vec()))
        .unwrap();
    assert_eq!(refused.status.0, 503, "got: {}", refused.body_text());
    assert!(refused.body_text().contains("draining"));

    // The three in-flight pipelined invocations all complete in order.
    let mut decoder = dandelion_http::ResponseDecoder::new(dandelion_http::ParseLimits::default());
    for index in 0..3u8 {
        let response = loop {
            if let Some(response) = decoder.next_response().unwrap() {
                break response;
            }
            let read = decoder.read_from(&mut stream, 64 * 1024).unwrap();
            assert!(
                read > 0,
                "server closed before answering all pipelined work"
            );
        };
        assert_eq!(response.status.0, 200, "got: {}", response.body_text());
        assert_eq!(response.body_text(), format!("drain-{index}"));
    }

    // Lowering the signal restores service.
    worker.end_drain();
    let restored = late
        .request(&HttpRequest::post("/v1/invoke/SlowComp", b"back".to_vec()))
        .unwrap();
    assert_eq!(restored.status.0, 200);
    assert_eq!(restored.body_text(), "back");
    assert!(server.shutdown(), "drained server shuts down cleanly");
    worker.shutdown();
}

/// Edge-triggered delivery must never strand buffered bytes: a request
/// arriving in adversarial fragment sizes (with pauses long enough that
/// each fragment is its own readiness edge) is still parsed and answered
/// in full, including fragments that split the head, straddle the
/// head/body boundary, or glue the tail of one pipelined request to the
/// start of the next.
#[test]
fn edge_triggered_reads_survive_adversarial_fragmentation() {
    let config = ServerConfig {
        read_timeout: Duration::from_secs(30),
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    // A deterministic xorshift stream makes each pattern reproducible
    // while still exploring very different split points.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next_split = |max: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        1 + (state as usize % max)
    };
    for pattern in 0..6 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        // Two pipelined invocations written as one byte stream, so random
        // splits can land anywhere — including across the request boundary.
        let bodies = [format!("frag-a-{pattern}"), format!("frag-b-{pattern}")];
        let mut wire = Vec::new();
        for body in &bodies {
            wire.extend_from_slice(
                format!(
                    "POST /v1/invoke/EchoComp HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                )
                .as_bytes(),
            );
        }
        // Pattern 0 is the worst case — one byte per edge — the rest use
        // random fragment sizes. The pause lets the loop fully drain to
        // EWOULDBLOCK so the next fragment is a genuinely new edge.
        let mut offset = 0;
        while offset < wire.len() {
            let len = if pattern == 0 {
                1
            } else {
                next_split(11).min(wire.len() - offset)
            };
            stream.write_all(&wire[offset..offset + len]).unwrap();
            offset += len;
            if offset < wire.len() && (pattern == 0 || offset % 3 == 0) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let mut decoder =
            dandelion_http::ResponseDecoder::new(dandelion_http::ParseLimits::default());
        for body in &bodies {
            let response = loop {
                if let Some(response) = decoder.next_response().unwrap() {
                    break response;
                }
                let read = decoder.read_from(&mut stream, 64 * 1024).unwrap();
                assert!(read > 0, "server closed before answering {body}");
            };
            assert_eq!(response.status.0, 200, "pattern {pattern}");
            assert_eq!(&response.body_text(), body, "pattern {pattern}");
        }
    }
    assert!(server.shutdown());
    worker.shutdown();
}

/// Cross-loop posting under churn: connections open, fire pipelined
/// invocations and either collect every response or vanish mid-flight.
/// No `Complete` message may be lost (every surviving client gets every
/// response) and completions for abandoned connections must fall on the
/// recycled slots' stale generation tags — observable as the in-flight
/// gauges draining back to zero instead of leaking.
#[test]
fn completion_storm_with_connection_churn_loses_nothing() {
    let config = ServerConfig {
        read_timeout: Duration::from_secs(30),
        max_connections: 512,
        ..loopback_config()
    };
    let (server, worker) = start_server(config);
    let addr = server.local_addr();
    const THREADS: usize = 4;
    const ROUNDS: usize = 40;
    let workers: Vec<_> = (0..THREADS)
        .map(|thread| {
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let pipelined = 1 + (thread + round) % 3;
                    let bodies: Vec<String> = (0..pipelined)
                        .map(|seq| format!("churn-{thread}-{round}-{seq}"))
                        .collect();
                    for body in &bodies {
                        stream
                            .write_all(
                                format!(
                                    "POST /v1/invoke/EchoComp HTTP/1.1\r\n\
                                     Content-Length: {}\r\n\r\n{}",
                                    body.len(),
                                    body
                                )
                                .as_bytes(),
                            )
                            .unwrap();
                    }
                    // Every third connection abandons its responses: the
                    // slab slot is recycled while completions are still in
                    // flight, which is exactly the stale-generation path.
                    if round % 3 == 2 {
                        drop(stream);
                        continue;
                    }
                    let mut decoder = dandelion_http::ResponseDecoder::new(
                        dandelion_http::ParseLimits::default(),
                    );
                    for body in &bodies {
                        let response = loop {
                            if let Some(response) = decoder.next_response().unwrap() {
                                break response;
                            }
                            let read = decoder.read_from(&mut stream, 64 * 1024).unwrap();
                            assert!(read > 0, "response for {body} lost");
                        };
                        assert_eq!(response.status.0, 200);
                        assert_eq!(&response.body_text(), body, "responses out of order");
                    }
                }
            })
        })
        .collect();
    for worker_thread in workers {
        worker_thread.join().expect("churn thread panicked");
    }
    // Every parked slot was settled — including the abandoned ones, whose
    // completions hit stale tokens: the per-loop in-flight gauges must
    // drain to zero, not leak.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let mut client = HttpClientConnection::connect(addr, Duration::from_secs(10)).unwrap();
        let response = client.request(&HttpRequest::get("/v1/stats")).unwrap();
        assert_eq!(response.status.0, 200);
        let document = dandelion_common::JsonValue::parse(&response.body_text()).unwrap();
        let loops = document
            .get("server")
            .and_then(|gauges| gauges.get("loops"))
            .and_then(dandelion_common::JsonValue::as_array)
            .expect("per-loop gauges present");
        let inflight: u64 = loops
            .iter()
            .map(|entry| {
                entry
                    .get("inflight")
                    .and_then(dandelion_common::JsonValue::as_u64)
                    .expect("inflight gauge")
            })
            .sum();
        if inflight == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "in-flight gauge leaked: {inflight} still registered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(server.shutdown());
    worker.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_invocations() {
    let worker = test_worker();
    worker
        .register_function(FunctionArtifact::new(
            "Slow",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                std::thread::sleep(Duration::from_millis(300));
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", dandelion_common::DataItem::new("slow", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition SlowComp(Input) => Output { Slow(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = Server::start(loopback_config(), frontend).expect("server binds");
    let addr = server.local_addr();

    let request_thread = std::thread::spawn(move || {
        let mut client = HttpClientConnection::connect(addr, Duration::from_secs(10)).unwrap();
        client
            .request(&HttpRequest::post(
                "/v1/invoke/SlowComp",
                b"drain me".to_vec(),
            ))
            .unwrap()
    });
    // Let the request reach the worker, then shut down while it runs.
    std::thread::sleep(Duration::from_millis(100));
    assert!(server.shutdown(), "shutdown waits for the invocation");
    let response = request_thread.join().unwrap();
    assert_eq!(response.status.0, 200);
    assert_eq!(response.body_text(), "drain me");
    // A draining server closes the connection after the response.
    assert_eq!(response.headers.get("connection"), Some("close"));
    worker.shutdown();
}
