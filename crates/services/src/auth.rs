//! The authentication service used by the log-processing application.
//!
//! Figure 3 of the paper: the `Access` compute function turns an access
//! token into an HTTP request to the auth service; the auth service replies
//! with the list of log-service endpoints the token is authorized to read.

use std::collections::BTreeMap;

use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};
use parking_lot::RwLock;

use crate::latency::{defaults, LatencyModel};
use crate::registry::{RemoteService, ServiceResponse};

/// Token-to-endpoints authorization service.
pub struct AuthService {
    tokens: RwLock<BTreeMap<String, Vec<String>>>,
    latency: LatencyModel,
}

impl AuthService {
    /// Creates an auth service with no registered tokens.
    pub fn new() -> Self {
        Self {
            tokens: RwLock::new(BTreeMap::new()),
            latency: defaults::MICROSERVICE,
        }
    }

    /// Creates an auth service with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self {
            tokens: RwLock::new(BTreeMap::new()),
            latency,
        }
    }

    /// Authorizes `token` to read from the given log-service endpoints.
    pub fn grant(&self, token: &str, endpoints: &[&str]) {
        self.tokens.write().insert(
            token.to_string(),
            endpoints.iter().map(|s| s.to_string()).collect(),
        );
    }

    fn authorize(&self, token: &str) -> Option<Vec<String>> {
        self.tokens.read().get(token).cloned()
    }
}

impl Default for AuthService {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteService for AuthService {
    fn name(&self) -> &str {
        "auth"
    }

    fn handle(&self, request: &HttpRequest) -> ServiceResponse {
        let payload = request.body.len();
        let make = |response: HttpResponse, extra: usize| ServiceResponse {
            latency: self.latency.latency_for(payload + extra),
            response,
        };
        if request.method != Method::Post && request.method != Method::Get {
            return make(
                HttpResponse::error(StatusCode::BAD_REQUEST, "auth accepts GET or POST only"),
                0,
            );
        }
        // The token is either the request body or a `token=` query parameter.
        let token = if !request.body.is_empty() {
            String::from_utf8_lossy(&request.body).trim().to_string()
        } else {
            request
                .target
                .split_once("token=")
                .map(|(_, token)| token.trim().to_string())
                .unwrap_or_default()
        };
        if token.is_empty() {
            return make(
                HttpResponse::error(StatusCode::BAD_REQUEST, "missing access token"),
                0,
            );
        }
        match self.authorize(&token) {
            Some(endpoints) => {
                let body = endpoints.join("\n");
                let bytes = body.len();
                make(HttpResponse::ok(body.into_bytes()), bytes)
            }
            None => make(
                HttpResponse::error(StatusCode::UNAUTHORIZED, "unknown access token"),
                0,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> AuthService {
        let auth = AuthService::new();
        auth.grant(
            "token-alpha",
            &["http://logs-0.internal/logs", "http://logs-1.internal/logs"],
        );
        auth
    }

    #[test]
    fn valid_token_returns_endpoints() {
        let auth = service();
        let request = HttpRequest::post("http://auth.internal/authorize", b"token-alpha".to_vec());
        let reply = auth.handle(&request);
        assert_eq!(reply.response.status, StatusCode::OK);
        let body = reply.response.body_text();
        let endpoints: Vec<&str> = body.lines().map(str::trim).collect();
        assert_eq!(endpoints.len(), 2);
        assert!(endpoints[0].contains("logs-0"));
        assert!(reply.latency >= defaults::MICROSERVICE.base);
    }

    #[test]
    fn token_via_query_parameter() {
        let auth = service();
        let request = HttpRequest::get("http://auth.internal/authorize?token=token-alpha");
        assert_eq!(auth.handle(&request).response.status, StatusCode::OK);
    }

    #[test]
    fn unknown_token_is_unauthorized() {
        let auth = service();
        let request = HttpRequest::post("http://auth.internal/authorize", b"wrong".to_vec());
        assert_eq!(
            auth.handle(&request).response.status,
            StatusCode::UNAUTHORIZED
        );
    }

    #[test]
    fn missing_token_and_bad_method_are_rejected() {
        let auth = service();
        let request = HttpRequest::post("http://auth.internal/authorize", Vec::new());
        assert_eq!(
            auth.handle(&request).response.status,
            StatusCode::BAD_REQUEST
        );
        let request = HttpRequest::new(Method::Delete, "http://auth.internal/authorize");
        assert_eq!(
            auth.handle(&request).response.status,
            StatusCode::BAD_REQUEST
        );
    }
}
