//! A small SQL-over-HTTP database service.
//!
//! The Text2SQL workflow issues the generated SQL to a SQLite database over
//! HTTP (§7.7, step 4, measured at 136 ms). This service provides a tiny
//! in-memory relational store with just enough SQL to run the workflow:
//! `SELECT <cols|*> FROM <table> [WHERE col = <value> [AND ...]]
//! [ORDER BY col [DESC]] [LIMIT n]`. Results are returned as CSV.

use std::collections::BTreeMap;

use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};
use parking_lot::RwLock;

use crate::latency::{defaults, LatencyModel};
use crate::registry::{RemoteService, ServiceResponse};

/// A cell value: text or number.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text value.
    Text(String),
    /// Numeric value (stored as f64, printed without trailing zeros).
    Number(f64),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Text(text) => text.clone(),
            Value::Number(number) => {
                if number.fract() == 0.0 {
                    format!("{}", *number as i64)
                } else {
                    format!("{number}")
                }
            }
        }
    }

    fn matches_literal(&self, literal: &str) -> bool {
        match self {
            Value::Text(text) => text.eq_ignore_ascii_case(literal.trim_matches('\'')),
            Value::Number(number) => literal
                .trim_matches('\'')
                .parse::<f64>()
                .map(|parsed| (parsed - number).abs() < f64::EPSILON)
                .unwrap_or(false),
        }
    }

    fn sort_key(&self) -> f64 {
        match self {
            Value::Number(number) => *number,
            Value::Text(_) => 0.0,
        }
    }
}

/// A table: column names plus rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column names in declaration order.
    pub columns: Vec<String>,
    /// Row values, each the same length as `columns`.
    pub rows: Vec<Vec<Value>>,
}

/// The in-memory SQL database service.
pub struct SqlDatabaseService {
    tables: RwLock<BTreeMap<String, Table>>,
    latency: LatencyModel,
}

impl SqlDatabaseService {
    /// Creates an empty database with the paper's measured query latency.
    pub fn new() -> Self {
        Self {
            tables: RwLock::new(BTreeMap::new()),
            latency: defaults::SQL_DATABASE,
        }
    }

    /// Creates a database with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self {
            tables: RwLock::new(BTreeMap::new()),
            latency,
        }
    }

    /// Creates the demo database used by the Text2SQL example (movies and
    /// cities tables).
    pub fn with_demo_data(self) -> Self {
        let movies = Table {
            columns: vec![
                "title".into(),
                "director".into(),
                "year".into(),
                "rating".into(),
            ],
            rows: vec![
                vec![
                    Value::Text("The Shawshank Redemption".into()),
                    Value::Text("Frank Darabont".into()),
                    Value::Number(1994.0),
                    Value::Number(9.3),
                ],
                vec![
                    Value::Text("Pulp Fiction".into()),
                    Value::Text("Quentin Tarantino".into()),
                    Value::Number(1994.0),
                    Value::Number(8.9),
                ],
                vec![
                    Value::Text("Spirited Away".into()),
                    Value::Text("Hayao Miyazaki".into()),
                    Value::Number(2001.0),
                    Value::Number(8.6),
                ],
                vec![
                    Value::Text("The Dark Knight".into()),
                    Value::Text("Christopher Nolan".into()),
                    Value::Number(2008.0),
                    Value::Number(9.0),
                ],
            ],
        };
        let cities = Table {
            columns: vec!["name".into(), "country".into(), "population".into()],
            rows: vec![
                vec![
                    Value::Text("Zurich".into()),
                    Value::Text("Switzerland".into()),
                    Value::Number(434_335.0),
                ],
                vec![
                    Value::Text("Geneva".into()),
                    Value::Text("Switzerland".into()),
                    Value::Number(203_856.0),
                ],
                vec![
                    Value::Text("Berlin".into()),
                    Value::Text("Germany".into()),
                    Value::Number(3_769_495.0),
                ],
                vec![
                    Value::Text("Tokyo".into()),
                    Value::Text("Japan".into()),
                    Value::Number(13_960_000.0),
                ],
            ],
        };
        self.register_table("movies", movies);
        self.register_table("cities", cities);
        self
    }

    /// Registers (or replaces) a table.
    pub fn register_table(&self, name: &str, table: Table) {
        self.tables.write().insert(name.to_string(), table);
    }

    /// Executes a limited SELECT statement, returning CSV (header + rows).
    pub fn query(&self, sql: &str) -> Result<String, String> {
        let normalized = sql.trim().trim_end_matches(';').to_string();
        let lower = normalized.to_lowercase();
        if !lower.starts_with("select ") {
            return Err("only SELECT statements are supported".to_string());
        }
        let from_index = lower.find(" from ").ok_or("missing FROM clause")?;
        let column_spec = normalized["select ".len()..from_index].trim().to_string();
        let after_from = &normalized[from_index + " from ".len()..];
        let after_from_lower = after_from.to_lowercase();

        // Split off LIMIT, ORDER BY and WHERE (in reverse clause order).
        let (rest, limit) = match after_from_lower.rfind(" limit ") {
            Some(index) => {
                let limit: usize = after_from[index + 7..]
                    .trim()
                    .parse()
                    .map_err(|_| "invalid LIMIT".to_string())?;
                (&after_from[..index], Some(limit))
            }
            None => (after_from, None),
        };
        let rest_lower = rest.to_lowercase();
        let (rest, order_by) = match rest_lower.rfind(" order by ") {
            Some(index) => {
                let clause = rest[index + 10..].trim();
                let descending = clause.to_lowercase().ends_with(" desc");
                let column = clause
                    .to_lowercase()
                    .trim_end_matches(" desc")
                    .trim_end_matches(" asc")
                    .trim()
                    .to_string();
                (&rest[..index], Some((column, descending)))
            }
            None => (rest, None),
        };
        let rest_lower = rest.to_lowercase();
        let (table_part, where_clause) = match rest_lower.find(" where ") {
            Some(index) => (&rest[..index], Some(rest[index + 7..].to_string())),
            None => (rest, None),
        };
        let table_name = table_part.trim().to_lowercase();

        let tables = self.tables.read();
        let table = tables
            .get(&table_name)
            .ok_or_else(|| format!("unknown table `{table_name}`"))?;

        // Resolve projection columns.
        let selected: Vec<usize> = if column_spec.trim() == "*" {
            (0..table.columns.len()).collect()
        } else {
            column_spec
                .split(',')
                .map(|column| {
                    let name = column.trim().to_lowercase();
                    table
                        .columns
                        .iter()
                        .position(|c| c.to_lowercase() == name)
                        .ok_or_else(|| format!("unknown column `{name}`"))
                })
                .collect::<Result<Vec<_>, _>>()?
        };

        // Parse WHERE into (column index, literal) conjunctions.
        let mut predicates = Vec::new();
        if let Some(clause) = where_clause {
            for conjunct in clause.to_lowercase().split(" and ") {
                let (column, literal) = conjunct
                    .split_once('=')
                    .ok_or("only equality predicates are supported")?;
                let index = table
                    .columns
                    .iter()
                    .position(|c| c.to_lowercase() == column.trim())
                    .ok_or_else(|| format!("unknown column `{}`", column.trim()))?;
                predicates.push((index, literal.trim().to_string()));
            }
        }

        let mut rows: Vec<&Vec<Value>> = table
            .rows
            .iter()
            .filter(|row| {
                predicates
                    .iter()
                    .all(|(index, literal)| row[*index].matches_literal(literal))
            })
            .collect();

        if let Some((column, descending)) = order_by {
            let index = table
                .columns
                .iter()
                .position(|c| c.to_lowercase() == column)
                .ok_or_else(|| format!("unknown column `{column}`"))?;
            rows.sort_by(|a, b| {
                a[index]
                    .sort_key()
                    .partial_cmp(&b[index].sort_key())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if descending {
                rows.reverse();
            }
        }
        if let Some(limit) = limit {
            rows.truncate(limit);
        }

        let header = selected
            .iter()
            .map(|index| table.columns[*index].clone())
            .collect::<Vec<_>>()
            .join(",");
        let mut out = header;
        for row in rows {
            out.push('\n');
            out.push_str(
                &selected
                    .iter()
                    .map(|index| row[*index].render())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        Ok(out)
    }
}

impl Default for SqlDatabaseService {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteService for SqlDatabaseService {
    fn name(&self) -> &str {
        "sql-database"
    }

    fn handle(&self, request: &HttpRequest) -> ServiceResponse {
        if request.method != Method::Post {
            return ServiceResponse {
                response: HttpResponse::error(
                    StatusCode::BAD_REQUEST,
                    "database expects POST with the SQL statement as body",
                ),
                latency: self.latency.latency_for(0),
            };
        }
        let sql = String::from_utf8_lossy(&request.body);
        match self.query(&sql) {
            Ok(csv) => ServiceResponse {
                latency: self.latency.latency_for(request.body.len() + csv.len()),
                response: HttpResponse::ok(csv.into_bytes())
                    .with_header("Content-Type", "text/csv"),
            },
            Err(message) => ServiceResponse {
                latency: self.latency.latency_for(request.body.len()),
                response: HttpResponse::error(StatusCode::BAD_REQUEST, &message),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SqlDatabaseService {
        SqlDatabaseService::with_latency(LatencyModel::zero()).with_demo_data()
    }

    #[test]
    fn select_star_returns_all_rows() {
        let csv = db().query("SELECT * FROM movies").unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("title,director,year,rating"));
    }

    #[test]
    fn where_order_by_and_limit() {
        let csv = db()
            .query("SELECT name FROM cities WHERE country = 'Switzerland' ORDER BY population DESC LIMIT 1")
            .unwrap();
        assert_eq!(csv, "name\nZurich");
    }

    #[test]
    fn numeric_equality_predicates() {
        let csv = db()
            .query("SELECT title FROM movies WHERE year = 1994 ORDER BY rating DESC")
            .unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec!["title", "The Shawshank Redemption", "Pulp Fiction"]
        );
    }

    #[test]
    fn errors_for_unknown_tables_and_columns() {
        assert!(db().query("SELECT * FROM unknown").is_err());
        assert!(db().query("SELECT nope FROM movies").is_err());
        assert!(db().query("DROP TABLE movies").is_err());
        assert!(db().query("SELECT * FROM movies WHERE rating > 9").is_err());
    }

    #[test]
    fn http_interface_returns_csv() {
        let service = db();
        let request = HttpRequest::post(
            "http://db.internal/query",
            b"SELECT title FROM movies ORDER BY rating DESC LIMIT 1".to_vec(),
        );
        let reply = service.handle(&request);
        assert_eq!(reply.response.status, StatusCode::OK);
        assert_eq!(
            reply.response.body_text(),
            "title\nThe Shawshank Redemption"
        );
        let bad = HttpRequest::post("http://db.internal/query", b"DELETE FROM movies".to_vec());
        assert_eq!(
            service.handle(&bad).response.status,
            StatusCode::BAD_REQUEST
        );
        let get = HttpRequest::get("http://db.internal/query");
        assert_eq!(
            service.handle(&get).response.status,
            StatusCode::BAD_REQUEST
        );
    }
}
