//! Latency models for simulated remote services.

use std::time::Duration;

/// A simple affine latency model: `base + per_kib * ceil(bytes / 1024)`.
///
/// The base term models request overhead (connection reuse, service-side
/// queueing at low load); the per-KiB term models transfer bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-request latency.
    pub base: Duration,
    /// Additional latency per KiB of combined request + response payload.
    pub per_kib: Duration,
}

impl LatencyModel {
    /// Creates a model with the given base latency and per-KiB cost.
    pub const fn new(base: Duration, per_kib: Duration) -> Self {
        Self { base, per_kib }
    }

    /// A model with only a fixed latency.
    pub const fn fixed(base: Duration) -> Self {
        Self {
            base,
            per_kib: Duration::ZERO,
        }
    }

    /// A zero-latency model, used by unit tests.
    pub const fn zero() -> Self {
        Self::fixed(Duration::ZERO)
    }

    /// The modeled latency for a request/response with `payload_bytes` of
    /// combined payload.
    pub fn latency_for(&self, payload_bytes: usize) -> Duration {
        let kib = payload_bytes.div_ceil(1024) as u32;
        self.base + self.per_kib * kib
    }
}

/// Default latency models matching the scale of the paper's experiments.
pub mod defaults {
    use super::LatencyModel;
    use std::time::Duration;

    /// Intra-datacenter microservice call (auth, log service): ~1 ms base,
    /// ~10 µs per KiB.
    pub const MICROSERVICE: LatencyModel =
        LatencyModel::new(Duration::from_micros(1000), Duration::from_micros(10));

    /// Object storage (S3-like): ~15 ms first-byte latency, ~12 µs per KiB
    /// (≈ 80 MB/s effective per-request throughput).
    pub const OBJECT_STORE: LatencyModel =
        LatencyModel::new(Duration::from_millis(15), Duration::from_micros(12));

    /// LLM inference: the paper measures 1238 ms for the Text2SQL prompt on
    /// Gemma-3-4b (§7.7).
    pub const LLM: LatencyModel = LatencyModel::fixed(Duration::from_millis(1238));

    /// SQL database query: the paper measures 136 ms for the Text2SQL query.
    pub const SQL_DATABASE: LatencyModel = LatencyModel::fixed(Duration::from_millis(136));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_model_scales_with_payload() {
        let model = LatencyModel::new(Duration::from_millis(1), Duration::from_micros(10));
        assert_eq!(model.latency_for(0), Duration::from_millis(1));
        assert_eq!(model.latency_for(1), Duration::from_micros(1010));
        assert_eq!(model.latency_for(1024), Duration::from_micros(1010));
        assert_eq!(model.latency_for(1025), Duration::from_micros(1020));
    }

    #[test]
    fn fixed_and_zero_models() {
        assert_eq!(
            LatencyModel::fixed(Duration::from_millis(5)).latency_for(1 << 20),
            Duration::from_millis(5)
        );
        assert_eq!(LatencyModel::zero().latency_for(12345), Duration::ZERO);
    }

    #[test]
    fn default_models_are_ordered_sensibly() {
        assert!(defaults::MICROSERVICE.base < defaults::OBJECT_STORE.base);
        assert!(defaults::OBJECT_STORE.base < defaults::SQL_DATABASE.base);
        assert!(defaults::SQL_DATABASE.base < defaults::LLM.base);
    }
}
