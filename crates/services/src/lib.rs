//! Simulated remote services reached by Dandelion communication functions.
//!
//! The paper's applications talk to cloud services over REST: an auth
//! service and log servers (log processing, Figure 3), S3 (query processing,
//! §7.7), an LLM inference endpoint and a SQL database (Text2SQL, §7.7).
//! None of those external systems are available in this reproduction, so the
//! [`ServiceRegistry`] hosts in-process stand-ins that speak the same HTTP
//! shapes and carry configurable latency models. The communication engine
//! resolves the request's host against the registry instead of opening a
//! socket — everything else (request validation, response handling, data
//! flow) is identical to a real deployment.
//!
//! Provided services:
//!
//! * [`auth::AuthService`] — token → list of authorized log-service endpoints.
//! * [`logs::LogService`] — serves synthetic log files.
//! * [`object_store::ObjectStore`] — S3-like GET/PUT/DELETE of objects in
//!   buckets.
//! * [`llm::LlmService`] — deterministic Text2SQL "LLM" with the measured
//!   latency of the paper's Gemma-3-4b deployment.
//! * [`database::SqlDatabaseService`] — a small SQL-over-HTTP database used
//!   by the Text2SQL workflow.

pub mod auth;
pub mod database;
pub mod latency;
pub mod llm;
pub mod logs;
pub mod object_store;
pub mod registry;

pub use latency::LatencyModel;
pub use registry::{RemoteService, ServiceRegistry, ServiceResponse};
