//! A deterministic mock of the LLM inference service.
//!
//! The Text2SQL agentic workflow (§7.7) sends a natural-language prompt to a
//! Gemma-3-4b model served on an H100 and receives a SQL query back. The
//! model itself is irrelevant to the platform evaluation — what matters is
//! the HTTP exchange and its latency (1238 ms, 61% of the end-to-end
//! pipeline). This service maps prompts to SQL deterministically using
//! keyword rules over a small schema so that the workflow is runnable and
//! testable end-to-end.

use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};

use crate::latency::{defaults, LatencyModel};
use crate::registry::{RemoteService, ServiceResponse};

/// Deterministic Text2SQL "LLM" endpoint.
pub struct LlmService {
    latency: LatencyModel,
}

impl LlmService {
    /// Creates the service with the paper's measured inference latency.
    pub fn new() -> Self {
        Self {
            latency: defaults::LLM,
        }
    }

    /// Creates the service with a custom latency (tests use zero).
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self { latency }
    }

    /// Translates a natural-language question into SQL over the demo schema
    /// (`movies(title, director, year, rating)` and
    /// `cities(name, country, population)`).
    ///
    /// The rules are intentionally simple and deterministic; the goal is a
    /// plausible, runnable Text2SQL pipeline, not model quality.
    pub fn text_to_sql(prompt: &str) -> String {
        let full = prompt.to_lowercase();
        // Prompt templates prepend schema hints; only the question itself
        // should drive table selection.
        let lower = full
            .rsplit_once("question:")
            .map(|(_, question)| question.trim().to_string())
            .unwrap_or(full);
        let table =
            if lower.contains("movie") || lower.contains("film") || lower.contains("director") {
                "movies"
            } else {
                "cities"
            };
        let mut filters: Vec<String> = Vec::new();
        if let Some(year) = lower
            .split(|c: char| !c.is_ascii_digit())
            .find(|token| token.len() == 4)
        {
            if table == "movies" {
                filters.push(format!("year = {year}"));
            }
        }
        if lower.contains("best") || lower.contains("highest rated") || lower.contains("top") {
            return format!(
                "SELECT title FROM movies ORDER BY rating DESC LIMIT {}",
                if lower.contains("ten") || lower.contains("10") {
                    10
                } else {
                    1
                }
            );
        }
        if table == "cities" {
            if let Some(country) = ["switzerland", "germany", "france", "italy", "japan"]
                .iter()
                .find(|country| lower.contains(*country))
            {
                let name = format!("{}{}", country[..1].to_uppercase(), &country[1..]);
                filters.push(format!("country = '{name}'"));
            }
            if lower.contains("population")
                || lower.contains("largest")
                || lower.contains("biggest")
            {
                let where_clause = if filters.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", filters.join(" AND "))
                };
                return format!(
                    "SELECT name FROM cities{where_clause} ORDER BY population DESC LIMIT 1"
                );
            }
        }
        let columns = if table == "movies" {
            "title, director"
        } else {
            "name, country"
        };
        if filters.is_empty() {
            format!("SELECT {columns} FROM {table}")
        } else {
            format!(
                "SELECT {columns} FROM {table} WHERE {}",
                filters.join(" AND ")
            )
        }
    }
}

impl Default for LlmService {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteService for LlmService {
    fn name(&self) -> &str {
        "llm"
    }

    fn handle(&self, request: &HttpRequest) -> ServiceResponse {
        if request.method != Method::Post {
            return ServiceResponse {
                response: HttpResponse::error(
                    StatusCode::BAD_REQUEST,
                    "LLM endpoint expects POST with the prompt as body",
                ),
                latency: self.latency.latency_for(0),
            };
        }
        let prompt = String::from_utf8_lossy(&request.body);
        if prompt.trim().is_empty() {
            return ServiceResponse {
                response: HttpResponse::error(StatusCode::BAD_REQUEST, "empty prompt"),
                latency: self.latency.latency_for(0),
            };
        }
        let sql = Self::text_to_sql(&prompt);
        // Mimic a chat-completions-style response: the SQL is wrapped in a
        // fenced code block inside explanatory prose, and the Text2SQL
        // extraction step has to pull it out.
        let body = format!(
            "Here is the SQL query answering your question:\n```sql\n{sql}\n```\nLet me know if you need anything else."
        );
        ServiceResponse {
            latency: self.latency.latency_for(request.body.len() + body.len()),
            response: HttpResponse::ok(body.into_bytes()).with_header("Content-Type", "text/plain"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_produces_fenced_sql() {
        let llm = LlmService::with_latency(LatencyModel::zero());
        let request = HttpRequest::post(
            "http://llm.internal/v1/generate",
            b"Which city in Switzerland has the largest population?".to_vec(),
        );
        let reply = llm.handle(&request);
        assert_eq!(reply.response.status, StatusCode::OK);
        let body = reply.response.body_text();
        assert!(body.contains("```sql\n"));
        assert!(body.contains("FROM cities"));
        assert!(body.contains("country = 'Switzerland'"));
    }

    #[test]
    fn movie_prompts_target_movies_table() {
        let sql = LlmService::text_to_sql("List the best movie of 1994");
        assert!(sql.contains("FROM movies"));
        assert!(sql.contains("ORDER BY rating"));
        let sql = LlmService::text_to_sql("Which films were directed in 2001?");
        assert!(sql.contains("year = 2001"));
    }

    #[test]
    fn translation_is_deterministic() {
        let a = LlmService::text_to_sql("top ten movies");
        let b = LlmService::text_to_sql("top ten movies");
        assert_eq!(a, b);
        assert!(a.contains("LIMIT 10"));
    }

    #[test]
    fn default_latency_matches_paper_measurement() {
        let llm = LlmService::new();
        let request = HttpRequest::post("http://llm.internal/v1/generate", b"hello".to_vec());
        let reply = llm.handle(&request);
        assert_eq!(reply.latency, defaults::LLM.base);
    }

    #[test]
    fn rejects_empty_or_non_post() {
        let llm = LlmService::with_latency(LatencyModel::zero());
        let empty = HttpRequest::post("http://llm.internal/v1/generate", Vec::new());
        assert_eq!(llm.handle(&empty).response.status, StatusCode::BAD_REQUEST);
        let get = HttpRequest::get("http://llm.internal/v1/generate");
        assert_eq!(llm.handle(&get).response.status, StatusCode::BAD_REQUEST);
    }
}
