//! The log service used by the distributed log-processing application.
//!
//! Each log-service endpoint serves a synthetic, deterministic log file: the
//! FanOut function requests the logs of every endpoint in parallel, and the
//! Render function templates them into an HTML report (paper Figure 3).

use dandelion_common::rng::SplitMix64;
use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};

use crate::latency::{defaults, LatencyModel};
use crate::registry::{RemoteService, ServiceResponse};

/// Severity levels used in the synthetic logs.
const LEVELS: [&str; 4] = ["DEBUG", "INFO", "WARN", "ERROR"];
/// Component names used in the synthetic logs.
const COMPONENTS: [&str; 5] = ["frontend", "scheduler", "storage", "billing", "gateway"];

/// A log service that serves a deterministic synthetic log file.
pub struct LogService {
    name: String,
    lines: usize,
    seed: u64,
    latency: LatencyModel,
}

impl LogService {
    /// Creates a log service with the given name, line count and seed.
    pub fn new(name: &str, lines: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            lines,
            seed,
            latency: defaults::MICROSERVICE,
        }
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Renders the synthetic log contents (also used by tests to know the
    /// expected payload).
    pub fn render_log(&self) -> String {
        let mut rng = SplitMix64::new(self.seed);
        let mut out = String::with_capacity(self.lines * 64);
        let mut timestamp = 1_700_000_000u64;
        for line in 0..self.lines {
            timestamp += rng.next_bounded(5) + 1;
            let level = LEVELS[rng.next_bounded(LEVELS.len() as u64) as usize];
            let component = COMPONENTS[rng.next_bounded(COMPONENTS.len() as u64) as usize];
            out.push_str(&format!(
                "{timestamp} {level:5} [{component}] request {line} handled in {} us on {}\n",
                rng.next_bounded(50_000),
                self.name,
            ));
        }
        out
    }
}

impl RemoteService for LogService {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&self, request: &HttpRequest) -> ServiceResponse {
        if request.method != Method::Get {
            return ServiceResponse {
                response: HttpResponse::error(
                    StatusCode::BAD_REQUEST,
                    "log service only supports GET",
                ),
                latency: self.latency.latency_for(0),
            };
        }
        let body = self.render_log();
        let bytes = body.len();
        ServiceResponse {
            response: HttpResponse::ok(body.into_bytes()).with_header("Content-Type", "text/plain"),
            latency: self.latency.latency_for(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_deterministic_logs() {
        let service = LogService::new("logs-0", 100, 7);
        let request = HttpRequest::get("http://logs-0.internal/logs");
        let first = service.handle(&request);
        let second = service.handle(&request);
        assert_eq!(first.response.body, second.response.body);
        assert_eq!(first.response.status, StatusCode::OK);
        assert_eq!(first.response.body_text().lines().count(), 100);
    }

    #[test]
    fn different_seeds_produce_different_logs() {
        let a = LogService::new("logs-0", 50, 1).render_log();
        let b = LogService::new("logs-0", 50, 2).render_log();
        assert_ne!(a, b);
    }

    #[test]
    fn latency_scales_with_log_size() {
        let small = LogService::new("s", 10, 3);
        let large = LogService::new("l", 10_000, 3);
        let request = HttpRequest::get("http://s/logs");
        assert!(large.handle(&request).latency > small.handle(&request).latency);
    }

    #[test]
    fn rejects_non_get() {
        let service = LogService::new("logs-0", 10, 7);
        let request = HttpRequest::post("http://logs-0.internal/logs", b"x".to_vec());
        assert_eq!(
            service.handle(&request).response.status,
            StatusCode::BAD_REQUEST
        );
    }
}
