//! An S3-like object store.
//!
//! The elastic query processing experiment (§7.7, Figure 9) ingests ~700 MB
//! of Star Schema Benchmark data from S3. This service provides the same
//! GET/PUT/DELETE-over-HTTP surface backed by an in-memory bucket map, with
//! an object-storage latency model (first-byte latency plus per-KiB
//! bandwidth cost).

use std::collections::BTreeMap;

use dandelion_common::SharedBytes;
use dandelion_http::{HttpRequest, HttpResponse, Method, StatusCode};
use parking_lot::RwLock;

use crate::latency::{defaults, LatencyModel};
use crate::registry::{RemoteService, ServiceResponse};

/// In-memory S3-like object store.
pub struct ObjectStore {
    buckets: RwLock<BTreeMap<String, BTreeMap<String, SharedBytes>>>,
    latency: LatencyModel,
}

impl ObjectStore {
    /// Creates an empty object store with the default S3-like latency model.
    pub fn new() -> Self {
        Self {
            buckets: RwLock::new(BTreeMap::new()),
            latency: defaults::OBJECT_STORE,
        }
    }

    /// Creates a store with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self {
            buckets: RwLock::new(BTreeMap::new()),
            latency,
        }
    }

    /// Stores an object directly (bypassing HTTP), useful for test setup and
    /// for the benchmark data generator. Objects are held as [`SharedBytes`]
    /// so GETs serve zero-copy views of the stored buffer.
    pub fn put_object(&self, bucket: &str, key: &str, data: impl Into<SharedBytes>) {
        self.buckets
            .write()
            .entry(bucket.to_string())
            .or_default()
            .insert(key.to_string(), data.into());
    }

    /// Reads an object directly, as a zero-copy view of the stored buffer.
    pub fn get_object(&self, bucket: &str, key: &str) -> Option<SharedBytes> {
        self.buckets.read().get(bucket)?.get(key).cloned()
    }

    /// Lists the keys of a bucket in sorted order.
    pub fn list_bucket(&self, bucket: &str) -> Vec<String> {
        self.buckets
            .read()
            .get(bucket)
            .map(|objects| objects.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Total bytes stored across all buckets.
    pub fn total_bytes(&self) -> usize {
        self.buckets
            .read()
            .values()
            .flat_map(|bucket| bucket.values())
            .map(SharedBytes::len)
            .sum()
    }

    /// Parses `/bucket/key...` from a request path.
    fn parse_path(target: &str) -> Option<(String, String)> {
        let path = target
            .split_once("://")
            .map(|(_, rest)| rest.split_once('/').map(|(_, p)| p).unwrap_or(""))
            .unwrap_or_else(|| target.trim_start_matches('/'));
        let path = path.split('?').next().unwrap_or(path);
        let (bucket, key) = path.split_once('/')?;
        if bucket.is_empty() || key.is_empty() {
            return None;
        }
        Some((bucket.to_string(), key.to_string()))
    }
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteService for ObjectStore {
    fn name(&self) -> &str {
        "object-store"
    }

    fn handle(&self, request: &HttpRequest) -> ServiceResponse {
        let Some((bucket, key)) = Self::parse_path(&request.target) else {
            return ServiceResponse {
                response: HttpResponse::error(
                    StatusCode::BAD_REQUEST,
                    "expected /<bucket>/<key> path",
                ),
                latency: self.latency.latency_for(0),
            };
        };
        let (response, payload) = match request.method {
            Method::Get => match self.get_object(&bucket, &key) {
                Some(data) => {
                    let len = data.len();
                    (
                        HttpResponse::ok(data)
                            .with_header("Content-Type", "application/octet-stream"),
                        len,
                    )
                }
                None => (
                    HttpResponse::error(StatusCode::NOT_FOUND, "no such object"),
                    0,
                ),
            },
            Method::Put | Method::Post => {
                let len = request.body.len();
                // Compact before storing: the body may be a small view of a
                // large producer buffer, and the store outlives the request.
                self.put_object(&bucket, &key, request.body.compact());
                (HttpResponse::new(StatusCode::CREATED, Vec::new()), len)
            }
            Method::Delete => {
                let removed = self
                    .buckets
                    .write()
                    .get_mut(&bucket)
                    .and_then(|objects| objects.remove(&key))
                    .is_some();
                if removed {
                    (HttpResponse::new(StatusCode::NO_CONTENT, Vec::new()), 0)
                } else {
                    (
                        HttpResponse::error(StatusCode::NOT_FOUND, "no such object"),
                        0,
                    )
                }
            }
            Method::Head => match self.get_object(&bucket, &key) {
                Some(data) => (
                    HttpResponse::ok(Vec::new())
                        .with_header("Content-Length", &data.len().to_string()),
                    0,
                ),
                None => (
                    HttpResponse::error(StatusCode::NOT_FOUND, "no such object"),
                    0,
                ),
            },
        };
        ServiceResponse {
            latency: self.latency.latency_for(payload),
            response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let store = ObjectStore::new();
        let put = HttpRequest::put("http://s3.internal/ssb/lineorder.csv", b"a,b,c".to_vec());
        assert_eq!(store.handle(&put).response.status, StatusCode::CREATED);

        let get = HttpRequest::get("http://s3.internal/ssb/lineorder.csv");
        let reply = store.handle(&get);
        assert_eq!(reply.response.status, StatusCode::OK);
        assert_eq!(reply.response.body, b"a,b,c");

        let delete = HttpRequest::new(Method::Delete, "http://s3.internal/ssb/lineorder.csv");
        assert_eq!(
            store.handle(&delete).response.status,
            StatusCode::NO_CONTENT
        );
        assert_eq!(store.handle(&get).response.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn direct_api_and_listing() {
        let store = ObjectStore::new();
        store.put_object("bucket", "z", vec![1, 2, 3]);
        store.put_object("bucket", "a", vec![4]);
        assert_eq!(store.list_bucket("bucket"), vec!["a", "z"]);
        assert_eq!(store.total_bytes(), 4);
        assert_eq!(
            store.get_object("bucket", "z"),
            Some(SharedBytes::from(vec![1u8, 2, 3]))
        );
        assert!(store.list_bucket("missing").is_empty());
    }

    #[test]
    fn get_latency_scales_with_object_size() {
        use std::time::Duration;

        let store = ObjectStore::new();
        store.put_object("b", "small", vec![0u8; 1024]);
        store.put_object("b", "large", vec![0u8; 10 * 1024 * 1024]);
        let small = store.handle(&HttpRequest::get("http://s3/b/small")).latency;
        let large = store.handle(&HttpRequest::get("http://s3/b/large")).latency;
        assert!(large > small + Duration::from_millis(50));
    }

    #[test]
    fn malformed_paths_are_rejected() {
        let store = ObjectStore::new();
        let request = HttpRequest::get("http://s3.internal/justbucket");
        assert_eq!(
            store.handle(&request).response.status,
            StatusCode::BAD_REQUEST
        );
    }

    #[test]
    fn head_reports_existence_without_body() {
        let store = ObjectStore::new();
        store.put_object("b", "k", vec![0u8; 100]);
        let request = HttpRequest::new(Method::Head, "http://s3/b/k");
        let reply = store.handle(&request);
        assert_eq!(reply.response.status, StatusCode::OK);
        assert!(reply.response.body.is_empty());
        assert_eq!(reply.response.headers.get("content-length"), Some("100"));
    }
}
