//! The service registry communication engines dispatch against.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use dandelion_http::{HttpRequest, HttpResponse, StatusCode, Uri};

/// A response together with the modeled network + service latency.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The HTTP response the service produced.
    pub response: HttpResponse,
    /// The modeled end-to-end latency of the exchange.
    pub latency: Duration,
}

/// An in-process stand-in for a remote HTTP service.
pub trait RemoteService: Send + Sync {
    /// A short name for logs and reports.
    fn name(&self) -> &str;

    /// Handles one request, returning the response and its modeled latency.
    fn handle(&self, request: &HttpRequest) -> ServiceResponse;
}

/// Maps host names to services.
///
/// The communication engine parses and validates the untrusted request, then
/// asks the registry to perform it. In a real deployment this is where a
/// socket would be opened; here the lookup stays in-process.
#[derive(Default, Clone)]
pub struct ServiceRegistry {
    services: HashMap<String, Arc<dyn RemoteService>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `service` under `host` (replacing any previous entry).
    pub fn register(&mut self, host: &str, service: Arc<dyn RemoteService>) {
        self.services.insert(host.to_string(), service);
    }

    /// Returns the registered host names in sorted order.
    pub fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.services.keys().cloned().collect();
        hosts.sort();
        hosts
    }

    /// Returns `true` if a service is registered for `host`.
    pub fn contains(&self, host: &str) -> bool {
        self.services.contains_key(host)
    }

    /// Performs a validated request against the service its URI names.
    ///
    /// Unknown hosts produce a `502 Bad Gateway` response (with zero added
    /// latency) rather than an error: the composition's downstream functions
    /// decide how to handle failures (paper §4.4).
    pub fn dispatch(&self, uri: &Uri, request: &HttpRequest) -> ServiceResponse {
        match self.services.get(&uri.host) {
            Some(service) => service.handle(request),
            None => ServiceResponse {
                response: HttpResponse::error(
                    StatusCode(502),
                    &format!("no route to host `{}`", uri.host),
                ),
                latency: Duration::ZERO,
            },
        }
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("hosts", &self.hosts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dandelion_http::Method;

    struct EchoService;

    impl RemoteService for EchoService {
        fn name(&self) -> &str {
            "echo"
        }

        fn handle(&self, request: &HttpRequest) -> ServiceResponse {
            ServiceResponse {
                response: HttpResponse::ok(request.body.clone()),
                latency: Duration::from_millis(1),
            }
        }
    }

    #[test]
    fn dispatches_to_registered_host() {
        let mut registry = ServiceRegistry::new();
        registry.register("echo.internal", Arc::new(EchoService));
        assert!(registry.contains("echo.internal"));
        assert_eq!(registry.hosts(), vec!["echo.internal"]);

        let request = HttpRequest::post("http://echo.internal/x", b"ping".to_vec());
        let uri = Uri::parse(&request.target).unwrap();
        let reply = registry.dispatch(&uri, &request);
        assert_eq!(reply.response.status, StatusCode::OK);
        assert_eq!(reply.response.body, b"ping");
        assert_eq!(reply.latency, Duration::from_millis(1));
    }

    #[test]
    fn unknown_hosts_get_bad_gateway() {
        let registry = ServiceRegistry::new();
        let request = HttpRequest::new(Method::Get, "http://nowhere.internal/");
        let uri = Uri::parse(&request.target).unwrap();
        let reply = registry.dispatch(&uri, &request);
        assert_eq!(reply.response.status, StatusCode(502));
        assert!(reply.response.body_text().contains("nowhere.internal"));
    }
}
