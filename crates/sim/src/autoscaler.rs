//! A Knative-style (KPA) concurrency autoscaler.
//!
//! Figures 1 and 10 of the paper drive Firecracker MicroVMs with "the
//! autoscaling policy in Knative": per-function sandbox counts follow the
//! observed request concurrency averaged over a stable window, scale up
//! immediately through a panic window, and scale down (eventually to zero)
//! only after the load has stayed low for the whole stable window plus a
//! grace period. Keeping sandboxes warm this way is what commits 16× more
//! memory than the actively used amount.

use std::collections::HashMap;
use std::time::Duration;

/// Autoscaler parameters (Knative defaults, scaled for simulation).
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerConfig {
    /// Target concurrent requests per sandbox.
    pub target_concurrency: f64,
    /// Averaging window for the stable (scale-down) estimate.
    pub stable_window: Duration,
    /// Averaging window for the panic (scale-up) estimate.
    pub panic_window: Duration,
    /// Extra idle time before the last sandbox of a function is removed.
    pub scale_to_zero_grace: Duration,
    /// How often the autoscaler re-evaluates desired counts.
    pub tick: Duration,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            target_concurrency: 1.0,
            stable_window: Duration::from_secs(60),
            panic_window: Duration::from_secs(6),
            scale_to_zero_grace: Duration::from_secs(30),
            tick: Duration::from_secs(2),
        }
    }
}

/// Per-function arrival bookkeeping.
#[derive(Debug, Default, Clone)]
struct FunctionState {
    /// Recent arrival timestamps (pruned to the stable window).
    arrivals: Vec<Duration>,
    /// Rolling estimate of mean execution time, used to convert arrival rate
    /// into concurrency.
    mean_execution: Duration,
    /// Last time an arrival was observed.
    last_arrival: Duration,
    /// Current desired sandbox count.
    desired: usize,
}

/// The autoscaler.
#[derive(Debug, Clone)]
pub struct KnativeAutoscaler {
    config: AutoscalerConfig,
    functions: HashMap<String, FunctionState>,
    next_tick: Duration,
}

impl KnativeAutoscaler {
    /// Creates an autoscaler with the given configuration.
    pub fn new(config: AutoscalerConfig) -> Self {
        Self {
            config,
            functions: HashMap::new(),
            next_tick: config.tick,
        }
    }

    /// Creates an autoscaler with Knative default parameters.
    pub fn knative_defaults() -> Self {
        Self::new(AutoscalerConfig::default())
    }

    /// Records the arrival of a request for `function`.
    pub fn observe_arrival(&mut self, function: &str, at: Duration) {
        let state = self.functions.entry(function.to_string()).or_default();
        state.arrivals.push(at);
        state.last_arrival = at;
    }

    /// Records an observed execution time for `function`, refining the
    /// concurrency estimate.
    pub fn observe_execution(&mut self, function: &str, duration: Duration) {
        let state = self.functions.entry(function.to_string()).or_default();
        if state.mean_execution.is_zero() {
            state.mean_execution = duration;
        } else {
            // Exponential moving average with alpha = 0.2.
            state.mean_execution = Duration::from_secs_f64(
                state.mean_execution.as_secs_f64() * 0.8 + duration.as_secs_f64() * 0.2,
            );
        }
    }

    /// The current desired sandbox count for `function`.
    pub fn desired(&self, function: &str) -> usize {
        self.functions
            .get(function)
            .map(|state| state.desired)
            .unwrap_or(0)
    }

    fn concurrency_over(&self, state: &FunctionState, window: Duration, now: Duration) -> f64 {
        let window_start = now.saturating_sub(window);
        let arrivals = state
            .arrivals
            .iter()
            .filter(|at| **at >= window_start)
            .count() as f64;
        let window_secs = window.as_secs_f64().max(1e-9);
        let rate = arrivals / window_secs;
        let execution = state
            .mean_execution
            .max(Duration::from_millis(50))
            .as_secs_f64();
        rate * execution
    }

    /// Advances the autoscaler to `now`, returning `(function, desired)`
    /// pairs for every function whose desired count changed.
    pub fn housekeeping(&mut self, now: Duration) -> Vec<(String, usize)> {
        let mut changes = Vec::new();
        while self.next_tick <= now {
            let tick = self.next_tick;
            self.next_tick += self.config.tick;
            let config = self.config;
            let mut updates = Vec::new();
            for (name, state) in self.functions.iter_mut() {
                let window_start = tick.saturating_sub(config.stable_window);
                state.arrivals.retain(|at| *at >= window_start);
                // Panic estimate scales up fast; stable estimate scales down.
                let stable = {
                    let window_secs = config.stable_window.as_secs_f64().max(1e-9);
                    let rate = state.arrivals.len() as f64 / window_secs;
                    rate * state
                        .mean_execution
                        .max(Duration::from_millis(50))
                        .as_secs_f64()
                };
                let panic_start = tick.saturating_sub(config.panic_window);
                let panic = {
                    let arrivals = state
                        .arrivals
                        .iter()
                        .filter(|at| **at >= panic_start)
                        .count() as f64;
                    let window_secs = config.panic_window.as_secs_f64().max(1e-9);
                    (arrivals / window_secs)
                        * state
                            .mean_execution
                            .max(Duration::from_millis(50))
                            .as_secs_f64()
                };
                let concurrency = stable.max(panic);
                let mut desired = (concurrency / config.target_concurrency).ceil() as usize;
                // Keep the last sandbox warm until the grace period expires.
                if desired == 0
                    && state.desired > 0
                    && tick < state.last_arrival + config.stable_window + config.scale_to_zero_grace
                {
                    desired = 1;
                }
                if desired != state.desired {
                    state.desired = desired;
                    updates.push((name.clone(), desired));
                }
            }
            changes.extend(updates);
        }
        // Report only the latest desired value per function.
        let mut latest: HashMap<String, usize> = HashMap::new();
        for (name, desired) in changes {
            latest.insert(name, desired);
        }
        let mut result: Vec<(String, usize)> = latest.into_iter().collect();
        result.sort();
        result
    }

    /// Exposes the concurrency estimate (stable window) for tests.
    pub fn stable_concurrency(&self, function: &str, now: Duration) -> f64 {
        self.functions
            .get(function)
            .map(|state| self.concurrency_over(state, self.config.stable_window, now))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seconds(value: u64) -> Duration {
        Duration::from_secs(value)
    }

    #[test]
    fn sustained_load_scales_up() {
        let mut autoscaler = KnativeAutoscaler::knative_defaults();
        autoscaler.observe_execution("f", Duration::from_millis(500));
        // 10 requests per second for 30 seconds → concurrency ≈ 5.
        for second in 0..30u64 {
            for request in 0..10u64 {
                autoscaler
                    .observe_arrival("f", seconds(second) + Duration::from_millis(request * 100));
            }
        }
        autoscaler.housekeeping(seconds(30));
        assert!(
            autoscaler.desired("f") >= 3,
            "desired {}",
            autoscaler.desired("f")
        );
        assert!(autoscaler.stable_concurrency("f", seconds(30)) > 1.0);
    }

    #[test]
    fn idle_functions_scale_to_zero_after_grace() {
        let config = AutoscalerConfig {
            stable_window: seconds(10),
            scale_to_zero_grace: seconds(5),
            ..AutoscalerConfig::default()
        };
        let mut autoscaler = KnativeAutoscaler::new(config);
        autoscaler.observe_execution("f", Duration::from_millis(200));
        for index in 0..20u64 {
            autoscaler.observe_arrival("f", Duration::from_millis(index * 100));
        }
        autoscaler.housekeeping(seconds(4));
        assert!(autoscaler.desired("f") >= 1);
        // Long after the last arrival the function scales to zero.
        autoscaler.housekeeping(seconds(60));
        assert_eq!(autoscaler.desired("f"), 0);
    }

    #[test]
    fn keeps_one_sandbox_warm_during_grace_period() {
        let config = AutoscalerConfig {
            stable_window: seconds(10),
            scale_to_zero_grace: seconds(20),
            ..AutoscalerConfig::default()
        };
        let mut autoscaler = KnativeAutoscaler::new(config);
        autoscaler.observe_execution("f", Duration::from_millis(100));
        autoscaler.observe_arrival("f", seconds(1));
        autoscaler.housekeeping(seconds(2));
        // Load has gone away, but within window + grace one sandbox stays.
        autoscaler.housekeeping(seconds(15));
        assert_eq!(autoscaler.desired("f"), 1);
        autoscaler.housekeeping(seconds(40));
        assert_eq!(autoscaler.desired("f"), 0);
    }

    #[test]
    fn housekeeping_reports_changes_once() {
        let mut autoscaler = KnativeAutoscaler::knative_defaults();
        autoscaler.observe_execution("f", Duration::from_millis(300));
        for index in 0..100u64 {
            autoscaler.observe_arrival("f", Duration::from_millis(index * 50));
        }
        let changes = autoscaler.housekeeping(seconds(10));
        assert!(changes
            .iter()
            .any(|(name, desired)| name == "f" && *desired > 0));
        // No new arrivals, no changes on the next immediate tick.
        let changes = autoscaler.housekeeping(seconds(10));
        assert!(changes.is_empty());
    }
}
