//! Virtual-time simulation of Dandelion and its baselines.
//!
//! The paper's evaluation compares Dandelion against Firecracker (with and
//! without snapshots), gVisor, and Spin/Wasmtime on 16-core x86 servers and a
//! 4-core Arm Morello board, sweeping open-loop load up to 10 kRPS and
//! replaying a 20-minute Azure Functions trace. Reproducing those figures by
//! direct measurement would require the original hardware and the original
//! systems; instead this crate models each platform as a queueing system with
//! calibrated service times (see `DESIGN.md` §1) and replays the same
//! workloads under virtual time:
//!
//! * [`request`] — request/phase descriptions and the workload presets used
//!   by the figures (1×1 and 128×128 matmul, fetch-and-compute phases, log
//!   processing, image compression).
//! * [`server`] — core pools (multi-server FCFS with next-free-time
//!   bookkeeping), warm-sandbox pools and the committed-memory tracker.
//! * [`platforms`] — the platform models: Dandelion (per-request sandboxes,
//!   compute/communication core split driven by the real
//!   [`dandelion_core::control::PiController`]), D-hybrid
//!   (single hybrid function, thread-per-core tuning), MicroVM platforms
//!   (Firecracker ± snapshots, gVisor) and Spin/Wasmtime.
//! * [`autoscaler`] — a Knative-style concurrency autoscaler with
//!   scale-to-zero grace periods, used for the Azure-trace memory
//!   experiments.
//! * [`load`] — open-loop Poisson and bursty load generators plus the trace
//!   replayer, and the sweep helpers the benchmark harness uses.
//!
//! Every model is deterministic given its seed, so figures regenerate
//! identically across machines.

pub mod autoscaler;
pub mod load;
pub mod platforms;
pub mod request;
pub mod server;

pub use load::{run_bursty, run_open_loop, run_trace, sweep_open_loop, RunResult, SweepPoint};
pub use platforms::{
    Completion, DHybridSim, DandelionSim, MicroVmKind, MicroVmSim, PlatformModel, WasmtimeSim,
};
pub use request::{workloads, Phase, RequestSpec};
pub use server::{CorePool, MemoryTracker, WarmPool};
