//! Load generation and experiment runners.
//!
//! The paper's latency figures use open-loop load (arrivals do not wait for
//! completions), swept across request rates; Figure 8 uses a bursty mix of
//! two applications; Figures 1 and 10 replay the Azure trace. These runners
//! generate the arrival processes, drive a [`PlatformModel`] and collect the
//! latency, cold-start and memory metrics the harness reports.

use std::collections::HashMap;
use std::time::Duration;

use dandelion_common::rng::SplitMix64;
use dandelion_common::stats::{LatencyRecorder, LatencySummary, TimeSeries};
use dandelion_trace::Trace;

use crate::platforms::PlatformModel;
use crate::request::{workloads, RequestSpec};

/// Metrics of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Name of the platform model.
    pub platform: String,
    /// Number of requests served.
    pub requests: usize,
    /// Latency summary across all requests.
    pub latency: LatencySummary,
    /// Number of requests that paid a sandbox cold start.
    pub cold_starts: u64,
    /// Committed-memory time series (1 s resolution).
    pub memory_timeline: TimeSeries,
    /// Time-averaged committed memory in bytes.
    pub average_memory_bytes: f64,
    /// Peak committed memory in bytes.
    pub peak_memory_bytes: f64,
}

/// One point of a latency-vs-throughput sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load in requests per second.
    pub rps: f64,
    /// Latency summary at this load.
    pub latency: LatencySummary,
    /// Cold-start count at this load.
    pub cold_starts: u64,
}

fn collect(
    model: &mut dyn PlatformModel,
    recorder: &mut LatencyRecorder,
    requests: usize,
    horizon: Duration,
) -> RunResult {
    model.finish(horizon);
    let memory_timeline = model.memory().timeline(horizon, Duration::from_secs(1));
    let average_memory_bytes = model.memory().average_bytes(horizon);
    let peak_memory_bytes = memory_timeline.max_value().unwrap_or(0.0);
    RunResult {
        platform: model.name(),
        requests,
        latency: recorder.summary(),
        cold_starts: model.cold_starts(),
        memory_timeline,
        average_memory_bytes,
        peak_memory_bytes,
    }
}

/// Runs open-loop Poisson load of `rps` for `duration`.
pub fn run_open_loop(
    model: &mut dyn PlatformModel,
    spec: &RequestSpec,
    rps: f64,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let mut rng = SplitMix64::new(seed);
    let mut recorder = LatencyRecorder::new();
    let mut now = Duration::ZERO;
    let mut requests = 0usize;
    while now < duration {
        let gap = rng.exponential(rps.max(1e-9));
        now += Duration::from_secs_f64(gap);
        if now >= duration {
            break;
        }
        let done = model.submit(now, spec);
        recorder.record(done.latency);
        requests += 1;
    }
    collect(model, &mut recorder, requests, duration)
}

/// Sweeps open-loop load over the given request rates, constructing a fresh
/// model for every point.
pub fn sweep_open_loop(
    mut make_model: impl FnMut() -> Box<dyn PlatformModel>,
    spec: &RequestSpec,
    rps_points: &[f64],
    duration: Duration,
    seed: u64,
) -> Vec<SweepPoint> {
    rps_points
        .iter()
        .map(|rps| {
            let mut model = make_model();
            let result = run_open_loop(model.as_mut(), spec, *rps, duration, seed);
            SweepPoint {
                rps: *rps,
                latency: result.latency,
                cold_starts: result.cold_starts,
            }
        })
        .collect()
}

/// A piecewise-constant rate profile: `(from, rps)` segments, each active
/// from its start time until the next segment (or the end of the run).
pub type RateProfile = Vec<(Duration, f64)>;

/// Runs a mix of applications with time-varying rates (Figure 8's bursty
/// multiplexing experiment). Returns per-application results keyed by the
/// request spec's name.
pub fn run_bursty(
    model: &mut dyn PlatformModel,
    apps: &[(RequestSpec, RateProfile)],
    duration: Duration,
    seed: u64,
) -> HashMap<String, RunResult> {
    // Generate arrivals per application, then merge in time order.
    let mut arrivals: Vec<(Duration, usize)> = Vec::new();
    for (app_index, (_, profile)) in apps.iter().enumerate() {
        let mut rng = SplitMix64::new(seed ^ (app_index as u64 + 1));
        for (segment_index, (start, rps)) in profile.iter().enumerate() {
            let end = profile
                .get(segment_index + 1)
                .map(|(next, _)| *next)
                .unwrap_or(duration)
                .min(duration);
            if *rps <= 0.0 {
                continue;
            }
            let mut now = *start;
            loop {
                now += Duration::from_secs_f64(rng.exponential(*rps));
                if now >= end {
                    break;
                }
                arrivals.push((now, app_index));
            }
        }
    }
    arrivals.sort_by_key(|a| a.0);

    let mut recorders: Vec<LatencyRecorder> = apps.iter().map(|_| LatencyRecorder::new()).collect();
    let mut counts = vec![0usize; apps.len()];
    for (at, app_index) in arrivals {
        let done = model.submit(at, &apps[app_index].0);
        recorders[app_index].record(done.latency);
        counts[app_index] += 1;
    }

    model.finish(duration);
    let memory_timeline = model.memory().timeline(duration, Duration::from_secs(1));
    let average_memory_bytes = model.memory().average_bytes(duration);
    let peak_memory_bytes = memory_timeline.max_value().unwrap_or(0.0);
    let platform = model.name();
    let cold_starts = model.cold_starts();

    apps.iter()
        .enumerate()
        .map(|(index, (spec, _))| {
            (
                spec.name.clone(),
                RunResult {
                    platform: platform.clone(),
                    requests: counts[index],
                    latency: recorders[index].summary(),
                    cold_starts,
                    memory_timeline: memory_timeline.clone(),
                    average_memory_bytes,
                    peak_memory_bytes,
                },
            )
        })
        .collect()
}

/// Replays an Azure-like trace against a platform model (Figures 1 and 10).
pub fn run_trace(model: &mut dyn PlatformModel, trace: &Trace) -> RunResult {
    let mut recorder = LatencyRecorder::new();
    let mut requests = 0usize;
    for event in &trace.events {
        let mut spec = workloads::trace_invocation(event.duration, event.memory_mib);
        spec.name = trace.functions[event.function].name.clone();
        let done = model.submit(event.time, &spec);
        recorder.record(done.latency);
        requests += 1;
    }
    collect(model, &mut recorder, requests, trace.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{DandelionConfig, DandelionSim, MicroVmKind, MicroVmSim, WarmPolicy};
    use crate::request::workloads;
    use dandelion_common::config::IsolationKind;
    use dandelion_isolation::{HardwarePlatform, SandboxCostModel};
    use dandelion_trace::{generate_trace, TraceConfig};

    fn dandelion() -> DandelionSim {
        DandelionSim::new(DandelionConfig::xeon(SandboxCostModel::for_backend(
            IsolationKind::Process,
            HardwarePlatform::X86Linux,
        )))
    }

    #[test]
    fn open_loop_run_produces_latency_summary() {
        let mut model = dandelion();
        let result = run_open_loop(
            &mut model,
            &workloads::matmul_128(),
            500.0,
            Duration::from_secs(5),
            1,
        );
        assert!(result.requests > 2000);
        assert!(result.latency.p50_us > 0.0);
        assert!(result.latency.p99_us >= result.latency.p50_us);
        assert_eq!(result.cold_starts as usize, result.requests);
        assert!(result.average_memory_bytes > 0.0);
    }

    #[test]
    fn sweep_latency_is_monotonic_near_saturation() {
        let points = sweep_open_loop(
            || Box::new(dandelion()),
            &workloads::matmul_128(),
            &[500.0, 4000.0, 8000.0],
            Duration::from_secs(5),
            2,
        );
        assert_eq!(points.len(), 3);
        // Well past saturation (8000 RPS of ~3ms work on 14 cores) the p99
        // must be dramatically higher than at light load.
        assert!(points[2].latency.p99_us > points[0].latency.p99_us * 10.0);
    }

    #[test]
    fn bursty_run_reports_per_application_latency() {
        let mut model = dandelion();
        let apps = vec![
            (
                workloads::image_compression(),
                vec![(Duration::ZERO, 100.0), (Duration::from_secs(5), 300.0)],
            ),
            (
                workloads::log_processing(),
                vec![(Duration::ZERO, 50.0), (Duration::from_secs(5), 400.0)],
            ),
        ];
        let results = run_bursty(&mut model, &apps, Duration::from_secs(10), 3);
        assert_eq!(results.len(), 2);
        let compression = &results["image-compression"];
        let logs = &results["log-processing"];
        assert!(compression.requests > 500);
        assert!(logs.requests > 500);
        // Log processing includes ~22ms of remote latency, so it is slower
        // end-to-end than image compression on an unloaded Dandelion node.
        assert!(logs.latency.p50_us > compression.latency.p50_us);
    }

    #[test]
    fn trace_replay_tracks_memory() {
        let trace = generate_trace(&TraceConfig {
            functions: 20,
            duration: Duration::from_secs(120),
            seed: 5,
            rate_scale: 1.0,
        });
        let mut dandelion_model = dandelion();
        let dandelion_result = run_trace(&mut dandelion_model, &trace);

        let mut firecracker = MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::Autoscaled {
                autoscaler: crate::autoscaler::KnativeAutoscaler::knative_defaults(),
            },
            9,
        );
        let firecracker_result = run_trace(&mut firecracker, &trace);

        assert_eq!(dandelion_result.requests, trace.len());
        assert_eq!(firecracker_result.requests, trace.len());
        // The keep-alive VMs commit far more memory than Dandelion's
        // per-request contexts (Figure 10).
        assert!(
            firecracker_result.average_memory_bytes > dandelion_result.average_memory_bytes * 4.0,
            "firecracker {} vs dandelion {}",
            firecracker_result.average_memory_bytes,
            dandelion_result.average_memory_bytes
        );
    }
}
