//! Platform models: Dandelion, D-hybrid, MicroVM baselines and Wasmtime.
//!
//! Each model is a queueing system with calibrated service times. Requests
//! must be submitted in non-decreasing arrival order (the load generators in
//! [`crate::load`] guarantee this); a submission immediately computes the
//! request's completion time given the platform's current state, which is an
//! exact model of FCFS multi-server queueing.
//!
//! Calibration sources:
//!
//! * Dandelion sandbox lifecycles — Table 1 / §7.2 via
//!   [`dandelion_isolation::SandboxCostModel`].
//! * Firecracker boot and snapshot-restore times, Wasmtime instantiation and
//!   code-generation slowdown, gVisor overheads — the numbers reported in
//!   §7.2/§7.3 of the paper.
//! * The compute times of the workloads — back-computed from the saturation
//!   throughputs the paper reports on the 16-core Xeon.

use std::time::Duration;

use dandelion_common::config::ControllerConfig;
use dandelion_common::rng::SplitMix64;
use dandelion_common::MIB;
use dandelion_core::control::{CoreAllocation, PiController};
use dandelion_isolation::{HardwarePlatform, SandboxCostModel};

use crate::autoscaler::KnativeAutoscaler;
use crate::request::{Phase, RequestSpec};
use crate::server::{CorePool, MemoryTracker};

/// The outcome of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// End-to-end latency of the request.
    pub latency: Duration,
    /// Whether the request paid a sandbox cold start.
    pub cold_start: bool,
}

/// A platform that can serve requests under virtual time.
pub trait PlatformModel {
    /// Display name used in reports.
    fn name(&self) -> String;

    /// Serves a request arriving at `arrival`. Arrivals must be submitted in
    /// non-decreasing order.
    fn submit(&mut self, arrival: Duration, request: &RequestSpec) -> Completion;

    /// The committed-memory tracker.
    fn memory(&self) -> &MemoryTracker;

    /// Number of sandbox cold starts so far.
    fn cold_starts(&self) -> u64;

    /// Called once after the last submission with the experiment horizon so
    /// that still-provisioned sandboxes can flush their memory intervals.
    fn finish(&mut self, _horizon: Duration) {}
}

// ---------------------------------------------------------------------------
// Dandelion
// ---------------------------------------------------------------------------

/// Configuration for the Dandelion platform model.
#[derive(Debug, Clone)]
pub struct DandelionConfig {
    /// Total CPU cores of the worker.
    pub total_cores: usize,
    /// Cores initially assigned to communication engines.
    pub initial_communication_cores: usize,
    /// Isolation backend cost model.
    pub cost: SandboxCostModel,
    /// PI controller parameters (paper defaults).
    pub controller: ControllerConfig,
    /// Fraction of requests whose function binary is loaded from disk.
    pub binary_cold_load_ratio: f64,
    /// Frontend + dispatcher overhead charged per compute phase.
    pub dispatch_overhead: Duration,
    /// CPU time a communication phase consumes on a communication core.
    pub communication_cpu: Duration,
    /// Random seed.
    pub seed: u64,
}

impl DandelionConfig {
    /// The default 16-core x86 worker used in §7.3–§7.6.
    pub fn xeon(cost: SandboxCostModel) -> Self {
        Self {
            total_cores: 16,
            initial_communication_cores: 2,
            cost,
            controller: ControllerConfig::default(),
            binary_cold_load_ratio: 0.03,
            dispatch_overhead: Duration::from_micros(120),
            communication_cpu: Duration::from_micros(25),
            seed: 1,
        }
    }

    /// The 4-core Morello board used for Table 1 / Figure 5.
    pub fn morello(cost: SandboxCostModel) -> Self {
        Self {
            total_cores: 4,
            initial_communication_cores: 1,
            ..Self::xeon(cost)
        }
    }
}

/// The Dandelion platform: a fresh sandbox per compute phase, cooperative
/// communication engines, and PI-controlled core re-balancing.
pub struct DandelionSim {
    config: DandelionConfig,
    compute: CorePool,
    communication: CorePool,
    controller: PiController,
    allocation: CoreAllocation,
    next_control_tick: Duration,
    rng: SplitMix64,
    memory: MemoryTracker,
    cold_starts: u64,
    core_timeline: Vec<(Duration, usize, usize)>,
}

impl DandelionSim {
    /// Creates the model.
    pub fn new(config: DandelionConfig) -> Self {
        let compute_cores = config.total_cores - config.initial_communication_cores;
        let allocation = CoreAllocation::new(compute_cores, config.initial_communication_cores);
        Self {
            compute: CorePool::new(compute_cores),
            communication: CorePool::new(config.initial_communication_cores),
            controller: PiController::new(config.controller),
            allocation,
            next_control_tick: config.controller.interval,
            rng: SplitMix64::new(config.seed),
            memory: MemoryTracker::new(),
            cold_starts: 0,
            core_timeline: Vec::new(),
            config,
        }
    }

    /// The `(time, compute cores, communication cores)` re-allocation
    /// history, used by the Figure 8 report.
    pub fn core_timeline(&self) -> &[(Duration, usize, usize)] {
        &self.core_timeline
    }

    fn run_control_plane(&mut self, now: Duration) {
        while self.next_control_tick <= now {
            let tick = self.next_control_tick;
            let compute_depth = self.compute.queue_depth(tick);
            let communication_depth = self.communication.queue_depth(tick);
            let decision = self.controller.tick(compute_depth, communication_depth);
            let next = self
                .allocation
                .apply(decision, self.controller.min_cores_per_kind());
            if next != self.allocation {
                self.allocation = next;
                self.compute.resize(next.compute, tick);
                self.communication.resize(next.communication, tick);
                self.core_timeline
                    .push((tick, next.compute, next.communication));
            }
            self.next_control_tick += self.controller.interval();
        }
    }
}

impl PlatformModel for DandelionSim {
    fn name(&self) -> String {
        format!("dandelion-{}", self.config.cost.backend)
    }

    fn submit(&mut self, arrival: Duration, request: &RequestSpec) -> Completion {
        self.run_control_plane(arrival);
        let mut cursor = arrival;
        let per_phase_io = request.io_bytes / request.phases.len().max(1);
        for phase in &request.phases {
            match phase {
                Phase::Compute { work } => {
                    let cold_binary = self.rng.bernoulli(self.config.binary_cold_load_ratio);
                    let service = self.config.dispatch_overhead
                        + self.config.cost.invocation_latency(
                            *work,
                            per_phase_io,
                            per_phase_io,
                            cold_binary,
                        );
                    let (start, finish) = self.compute.acquire(cursor, service);
                    self.memory.record(start, finish, request.memory_bytes());
                    self.cold_starts += 1;
                    cursor = finish;
                }
                Phase::Communication {
                    remote,
                    payload_bytes,
                } => {
                    let cpu = self.config.communication_cpu
                        + Duration::from_nanos((payload_bytes / 1024) as u64 * 200);
                    let (_, cpu_done) = self.communication.acquire(cursor, cpu);
                    cursor = cpu_done + *remote;
                }
            }
        }
        Completion {
            latency: cursor - arrival,
            cold_start: true,
        }
    }

    fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    fn cold_starts(&self) -> u64 {
        self.cold_starts
    }
}

// ---------------------------------------------------------------------------
// D-hybrid
// ---------------------------------------------------------------------------

/// Dandelion-hybrid (§7.5): the same isolation and architecture, but the
/// whole composition runs as a single "hybrid" function that may open
/// sockets, so the OS multiplexes `threads_per_core` such functions per core.
pub struct DHybridSim {
    cost: SandboxCostModel,
    slots: CorePool,
    cores: CorePool,
    threads_per_core: usize,
    pinned: bool,
    memory: MemoryTracker,
    cold_starts: u64,
}

impl DHybridSim {
    /// Creates the model for a machine with `total_cores` cores.
    pub fn new(
        cost: SandboxCostModel,
        total_cores: usize,
        threads_per_core: usize,
        pinned: bool,
    ) -> Self {
        let threads_per_core = threads_per_core.max(1);
        Self {
            cost,
            slots: CorePool::new(total_cores * threads_per_core),
            cores: CorePool::new(total_cores),
            threads_per_core,
            pinned,
            memory: MemoryTracker::new(),
            cold_starts: 0,
        }
    }

    /// Context-switch / interference penalty applied to compute time when the
    /// cores are oversubscribed and threads are not pinned.
    fn compute_penalty(&self) -> f64 {
        if self.pinned || self.threads_per_core == 1 {
            1.0
        } else {
            1.0 + 0.12 * (self.threads_per_core - 1) as f64
        }
    }
}

impl PlatformModel for DHybridSim {
    fn name(&self) -> String {
        if self.pinned {
            format!("d-hybrid-tpc{}-pinned", self.threads_per_core)
        } else {
            format!("d-hybrid-tpc{}", self.threads_per_core)
        }
    }

    fn submit(&mut self, arrival: Duration, request: &RequestSpec) -> Completion {
        // The request occupies one hybrid-function slot for its whole
        // lifetime and one sandbox creation.
        let (slot, slot_start) = self.slots.acquire_deferred(arrival);
        let mut cursor = slot_start + self.cost.cold_total(false);
        self.cold_starts += 1;
        let penalty = self.compute_penalty();
        for phase in &request.phases {
            match phase {
                Phase::Compute { work } => {
                    let service = work.mul_f64(self.cost.compute_slowdown * penalty);
                    let (_, finish) = self.cores.acquire(cursor, service);
                    cursor = finish;
                }
                Phase::Communication { remote, .. } => {
                    // Blocking I/O inside the hybrid function: the slot stays
                    // occupied but no core is consumed.
                    cursor += *remote;
                }
            }
        }
        self.slots.occupy_until(slot, cursor);
        self.memory
            .record(slot_start, cursor, request.memory_bytes());
        Completion {
            latency: cursor - arrival,
            cold_start: true,
        }
    }

    fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    fn cold_starts(&self) -> u64 {
        self.cold_starts
    }
}

// ---------------------------------------------------------------------------
// MicroVM baselines (Firecracker, Firecracker + snapshots, gVisor)
// ---------------------------------------------------------------------------

/// Which MicroVM-style baseline to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroVmKind {
    /// Firecracker booting a fresh MicroVM for cold starts.
    Firecracker,
    /// Firecracker restoring cold starts from snapshots.
    FirecrackerSnapshot,
    /// gVisor hardened containers.
    Gvisor,
}

impl MicroVmKind {
    /// Sandbox creation cost on the critical path of a cold request.
    pub fn cold_start_cost(&self, hardware: HardwarePlatform) -> Duration {
        match (self, hardware) {
            (MicroVmKind::Firecracker, HardwarePlatform::X86Linux) => Duration::from_millis(153),
            (MicroVmKind::Firecracker, HardwarePlatform::Morello) => Duration::from_millis(160),
            // "at least 8 ms are spent on loading a minimal snapshot ... and
            // re-establishing the network connection"; end-to-end restore is
            // 10-12 ms on x86 and limits the Morello server to ~120 RPS.
            (MicroVmKind::FirecrackerSnapshot, HardwarePlatform::X86Linux) => {
                Duration::from_millis(12)
            }
            (MicroVmKind::FirecrackerSnapshot, HardwarePlatform::Morello) => {
                Duration::from_millis(33)
            }
            (MicroVmKind::Gvisor, HardwarePlatform::X86Linux) => Duration::from_millis(95),
            (MicroVmKind::Gvisor, HardwarePlatform::Morello) => Duration::from_millis(140),
        }
    }

    /// Per-request overhead of the guest networking / relay path.
    pub fn request_overhead(&self) -> Duration {
        match self {
            MicroVmKind::Firecracker | MicroVmKind::FirecrackerSnapshot => {
                Duration::from_micros(1200)
            }
            MicroVmKind::Gvisor => Duration::from_micros(1800),
        }
    }

    /// Slowdown of guest compute relative to native.
    pub fn compute_slowdown(&self) -> f64 {
        match self {
            MicroVmKind::Firecracker | MicroVmKind::FirecrackerSnapshot => 1.12,
            MicroVmKind::Gvisor => 1.25,
        }
    }

    /// Extra memory of the guest OS / runtime per sandbox.
    pub fn per_sandbox_overhead_bytes(&self) -> usize {
        match self {
            MicroVmKind::Firecracker | MicroVmKind::FirecrackerSnapshot => 42 * MIB,
            MicroVmKind::Gvisor => 60 * MIB,
        }
    }
}

/// How the MicroVM platform decides between warm and cold starts.
pub enum WarmPolicy {
    /// A fixed fraction of requests is served warm (the paper's 97% hot
    /// setting for the load-sweep figures).
    FixedHotRatio {
        /// Probability that a request finds a warm sandbox.
        hot_ratio: f64,
    },
    /// Sandboxes are provisioned by a Knative-style autoscaler and kept warm
    /// until it scales them down (the Azure-trace figures).
    Autoscaled {
        /// The autoscaler instance.
        autoscaler: KnativeAutoscaler,
    },
}

/// A MicroVM-based FaaS platform fronted by an HTTP relay.
pub struct MicroVmSim {
    kind: MicroVmKind,
    hardware: HardwarePlatform,
    cores: CorePool,
    policy: WarmPolicy,
    rng: SplitMix64,
    memory: MemoryTracker,
    cold_starts: u64,
    /// Provisioned VMs in autoscaled mode: (function, free_at, created,
    /// memory bytes).
    vms: Vec<ProvisionedVm>,
    horizon_hint: Duration,
}

struct ProvisionedVm {
    function: String,
    free_at: Duration,
    last_used: Duration,
    created: Duration,
    memory_bytes: usize,
}

impl MicroVmSim {
    /// Creates a MicroVM platform model.
    pub fn new(
        kind: MicroVmKind,
        hardware: HardwarePlatform,
        cores: usize,
        policy: WarmPolicy,
        seed: u64,
    ) -> Self {
        Self {
            kind,
            hardware,
            cores: CorePool::new(cores),
            policy,
            rng: SplitMix64::new(seed),
            memory: MemoryTracker::new(),
            cold_starts: 0,
            vms: Vec::new(),
            horizon_hint: Duration::ZERO,
        }
    }

    fn vm_memory(&self, request: &RequestSpec) -> usize {
        request.memory_bytes() + self.kind.per_sandbox_overhead_bytes()
    }

    fn autoscaler_housekeeping(&mut self, now: Duration) {
        let WarmPolicy::Autoscaled { autoscaler } = &mut self.policy else {
            return;
        };
        for (function, target) in autoscaler.housekeeping(now) {
            // Scale down idle VMs above the target count.
            let mut provisioned: Vec<usize> = self
                .vms
                .iter()
                .enumerate()
                .filter(|(_, vm)| vm.function == function)
                .map(|(index, _)| index)
                .collect();
            let mut excess = provisioned.len().saturating_sub(target);
            // Remove idle VMs first, newest last.
            provisioned.sort_by_key(|index| self.vms[*index].last_used);
            let mut removed = Vec::new();
            for index in provisioned {
                if excess == 0 {
                    break;
                }
                if self.vms[index].free_at <= now {
                    removed.push(index);
                    excess -= 1;
                }
            }
            removed.sort_unstable_by(|a, b| b.cmp(a));
            for index in removed {
                let vm = self.vms.remove(index);
                self.memory.record(vm.created, now, vm.memory_bytes);
            }
        }
    }

    /// Flushes still-provisioned VM memory intervals up to `horizon`.
    ///
    /// Must be called once after the last submission so that VMs that were
    /// never scaled down still contribute to the memory timeline.
    pub fn flush_provisioned(&mut self, horizon: Duration) {
        self.horizon_hint = horizon;
        for vm in self.vms.drain(..) {
            self.memory.record(vm.created, horizon, vm.memory_bytes);
        }
    }
}

impl PlatformModel for MicroVmSim {
    fn name(&self) -> String {
        match self.kind {
            MicroVmKind::Firecracker => "firecracker".to_string(),
            MicroVmKind::FirecrackerSnapshot => "firecracker-snapshot".to_string(),
            MicroVmKind::Gvisor => "gvisor".to_string(),
        }
    }

    fn submit(&mut self, arrival: Duration, request: &RequestSpec) -> Completion {
        self.autoscaler_housekeeping(arrival);
        let compute = request
            .total_compute()
            .mul_f64(self.kind.compute_slowdown());
        let cpu_service_warm = self.kind.request_overhead() + compute;
        let vm_memory = self.vm_memory(request);

        let warm = match &mut self.policy {
            WarmPolicy::FixedHotRatio { hot_ratio } => self.rng.bernoulli(*hot_ratio),
            WarmPolicy::Autoscaled { autoscaler } => {
                autoscaler.observe_arrival(&request.name, arrival);
                self.vms
                    .iter()
                    .any(|vm| vm.function == request.name && vm.free_at <= arrival)
            }
        };

        let cpu_service = if warm {
            cpu_service_warm
        } else {
            self.cold_starts += 1;
            cpu_service_warm + self.kind.cold_start_cost(self.hardware)
        };
        let (start, cpu_finish) = self.cores.acquire(arrival, cpu_service);
        let finish = cpu_finish + request.total_remote();

        match &mut self.policy {
            WarmPolicy::FixedHotRatio { .. } => {
                // Memory is committed for the request plus the keep-alive the
                // relay would apply; for the load-sweep figures only latency
                // matters, so commit for the active window.
                self.memory.record(start, finish, vm_memory);
            }
            WarmPolicy::Autoscaled { .. } => {
                if warm {
                    if let Some(vm) = self
                        .vms
                        .iter_mut()
                        .filter(|vm| vm.function == request.name && vm.free_at <= arrival)
                        .min_by_key(|vm| vm.free_at)
                    {
                        vm.free_at = finish;
                        vm.last_used = finish;
                    }
                } else {
                    self.vms.push(ProvisionedVm {
                        function: request.name.clone(),
                        free_at: finish,
                        last_used: finish,
                        created: start,
                        memory_bytes: vm_memory,
                    });
                }
            }
        }

        Completion {
            latency: finish - arrival,
            cold_start: !warm,
        }
    }

    fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    fn finish(&mut self, horizon: Duration) {
        self.flush_provisioned(horizon);
    }
}

// ---------------------------------------------------------------------------
// Spin / Wasmtime
// ---------------------------------------------------------------------------

/// The Spin/Wasmtime baseline: cheap pooled instantiation, slower generated
/// code, cooperative scheduling on a shared Tokio-style runtime.
pub struct WasmtimeSim {
    cores: CorePool,
    memory: MemoryTracker,
    cold_starts: u64,
    /// Code-generation slowdown relative to native (§7.3).
    compute_slowdown: f64,
    /// Per-request instantiation cost with pooled allocation.
    instantiation: Duration,
}

impl WasmtimeSim {
    /// Creates the model for a machine with `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            cores: CorePool::new(cores),
            memory: MemoryTracker::new(),
            cold_starts: 0,
            compute_slowdown: 2.2,
            instantiation: Duration::from_micros(450),
        }
    }

    /// Overrides the code-generation slowdown (the paper observes a larger
    /// gap for the image-compression workload than for matmul).
    pub fn with_compute_slowdown(mut self, slowdown: f64) -> Self {
        self.compute_slowdown = slowdown;
        self
    }
}

impl PlatformModel for WasmtimeSim {
    fn name(&self) -> String {
        "wasmtime".to_string()
    }

    fn submit(&mut self, arrival: Duration, request: &RequestSpec) -> Completion {
        self.cold_starts += 1;
        let mut cursor = arrival;
        let mut first_start = None;
        for phase in &request.phases {
            match phase {
                Phase::Compute { work } => {
                    let service = self.instantiation + work.mul_f64(self.compute_slowdown);
                    let (start, finish) = self.cores.acquire(cursor, service);
                    first_start.get_or_insert(start);
                    cursor = finish;
                }
                Phase::Communication { remote, .. } => {
                    // The Tokio runtime parks the task during I/O; no core is
                    // held, matching Spin's cooperative scheduling.
                    cursor += *remote;
                }
            }
        }
        let start = first_start.unwrap_or(arrival);
        self.memory
            .record(start, cursor, request.memory_bytes() / 4 + 8 * MIB);
        Completion {
            latency: cursor - arrival,
            cold_start: true,
        }
    }

    fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    fn cold_starts(&self) -> u64 {
        self.cold_starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::workloads;
    use dandelion_common::config::IsolationKind;

    fn cheri_cost() -> SandboxCostModel {
        SandboxCostModel::for_backend(IsolationKind::Cheri, HardwarePlatform::Morello)
    }

    fn kvm_cost() -> SandboxCostModel {
        SandboxCostModel::for_backend(IsolationKind::Kvm, HardwarePlatform::X86Linux)
    }

    #[test]
    fn dandelion_unloaded_latency_tracks_table_1() {
        let mut sim = DandelionSim::new(DandelionConfig::morello(cheri_cost()));
        let done = sim.submit(Duration::ZERO, &workloads::matmul_1x1());
        // Table 1: 89 µs sandbox total + dispatch overhead; well under 1 ms.
        assert!(done.latency > Duration::from_micros(80));
        assert!(done.latency < Duration::from_millis(1));
        assert_eq!(sim.cold_starts(), 1);
        assert!(!sim.memory().is_empty());
    }

    #[test]
    fn dandelion_queues_when_offered_load_exceeds_capacity() {
        let mut sim = DandelionSim::new(DandelionConfig::xeon(kvm_cost()));
        let spec = workloads::matmul_128();
        let mut last = Duration::ZERO;
        // Offer 10k RPS of ~3 ms requests to 14 compute cores: far beyond
        // capacity, so latency must blow up.
        let mut worst = Duration::ZERO;
        for index in 0..5_000u64 {
            let arrival = Duration::from_micros(index * 100);
            let done = sim.submit(arrival, &spec);
            worst = worst.max(done.latency);
            last = arrival;
        }
        assert!(worst > Duration::from_millis(100), "worst {worst:?}");
        assert!(last > Duration::ZERO);
    }

    #[test]
    fn dandelion_controller_shifts_cores_under_io_load() {
        let mut sim = DandelionSim::new(DandelionConfig::xeon(kvm_cost()));
        let spec = workloads::fetch_and_compute(4);
        for index in 0..20_000u64 {
            let arrival = Duration::from_micros(index * 500);
            sim.submit(arrival, &spec);
        }
        // The I/O heavy workload must have triggered at least one
        // re-allocation towards communication engines.
        assert!(!sim.core_timeline().is_empty());
    }

    #[test]
    fn firecracker_cold_starts_dominate_unloaded_latency() {
        let mut cold = MicroVmSim::new(
            MicroVmKind::Firecracker,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
            3,
        );
        let done = cold.submit(Duration::ZERO, &workloads::matmul_128());
        assert!(done.cold_start);
        assert!(done.latency > Duration::from_millis(150));

        let mut snapshot = MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
            3,
        );
        let done = snapshot.submit(Duration::ZERO, &workloads::matmul_128());
        assert!(done.latency > Duration::from_millis(12));
        assert!(done.latency < Duration::from_millis(30));
    }

    #[test]
    fn hot_ratio_controls_cold_start_fraction() {
        let mut sim = MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::X86Linux,
            16,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.97 },
            7,
        );
        let spec = workloads::matmul_128();
        let total = 10_000u64;
        for index in 0..total {
            sim.submit(Duration::from_micros(index * 1000), &spec);
        }
        let ratio = sim.cold_starts() as f64 / total as f64;
        assert!((0.02..0.04).contains(&ratio), "cold ratio {ratio}");
    }

    #[test]
    fn dandelion_beats_firecracker_snapshot_on_cold_tail() {
        // Figure 5: with 0% hot requests, Dandelion's p99 stays orders of
        // magnitude below Firecracker's.
        let spec = workloads::matmul_1x1();
        let mut dandelion = DandelionSim::new(DandelionConfig::morello(cheri_cost()));
        let mut firecracker = MicroVmSim::new(
            MicroVmKind::FirecrackerSnapshot,
            HardwarePlatform::Morello,
            4,
            WarmPolicy::FixedHotRatio { hot_ratio: 0.0 },
            5,
        );
        // 100 RPS: below Firecracker-snapshot's saturation (~120 RPS).
        let mut dandelion_worst = Duration::ZERO;
        let mut firecracker_worst = Duration::ZERO;
        for index in 0..500u64 {
            let arrival = Duration::from_millis(index * 10);
            dandelion_worst = dandelion_worst.max(dandelion.submit(arrival, &spec).latency);
            firecracker_worst = firecracker_worst.max(firecracker.submit(arrival, &spec).latency);
        }
        assert!(dandelion_worst * 20 < firecracker_worst);
    }

    #[test]
    fn wasmtime_pays_codegen_slowdown_not_boot_cost() {
        let mut wasmtime = WasmtimeSim::new(16);
        let done = wasmtime.submit(Duration::ZERO, &workloads::matmul_128());
        // Unloaded latency is a few ms (slower code), far from FC's 150 ms.
        assert!(done.latency > Duration::from_millis(4));
        assert!(done.latency < Duration::from_millis(20));
    }

    #[test]
    fn dhybrid_tpc_tradeoff_matches_figure_7() {
        // Compute-heavy workload: pinned tpc=1 beats tpc=5.
        let spec = workloads::matmul_128();
        let run = |mut sim: DHybridSim| {
            let mut worst = Duration::ZERO;
            for index in 0..20_000u64 {
                // 2500 RPS offered load.
                let arrival = Duration::from_micros(index * 400);
                worst = worst.max(sim.submit(arrival, &spec).latency);
            }
            worst
        };
        let pinned = run(DHybridSim::new(kvm_cost(), 16, 1, true));
        let oversubscribed = run(DHybridSim::new(kvm_cost(), 16, 5, false));
        assert!(pinned < oversubscribed);

        // I/O-heavy workload: tpc=5 beats tpc=1 because slots hide I/O. At
        // 2500 RPS, 16 single-threaded slots of ~9 ms requests saturate while
        // 80 slots do not.
        let spec = workloads::fetch_and_compute(4);
        let run_io = |mut sim: DHybridSim| {
            let mut worst = Duration::ZERO;
            for index in 0..15_000u64 {
                let arrival = Duration::from_micros(index * 400);
                worst = worst.max(sim.submit(arrival, &spec).latency);
            }
            worst
        };
        let single = run_io(DHybridSim::new(kvm_cost(), 16, 1, true));
        let five = run_io(DHybridSim::new(kvm_cost(), 16, 5, false));
        assert!(five < single, "tpc5 {five:?} vs tpc1 {single:?}");
    }
}
