//! Request descriptions and workload presets.
//!
//! A request is a sequence of phases alternating between pure compute and
//! communication with a remote service — exactly the shape a Dandelion
//! composition exposes to the platform. Baseline platforms execute the same
//! phases inside a single sandbox.

use std::time::Duration;

use dandelion_common::MIB;

/// One phase of a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Pure computation consuming CPU for the given time (on native code).
    Compute {
        /// CPU time of the phase when run natively on one core.
        work: Duration,
    },
    /// An exchange with a remote service.
    Communication {
        /// Remote service + network latency (not consuming local CPU).
        remote: Duration,
        /// Payload bytes transferred (drives copy/serialization costs).
        payload_bytes: usize,
    },
}

impl Phase {
    /// Total native CPU time of the phase.
    pub fn compute_time(&self) -> Duration {
        match self {
            Phase::Compute { work } => *work,
            Phase::Communication { .. } => Duration::ZERO,
        }
    }

    /// Total remote latency of the phase.
    pub fn remote_time(&self) -> Duration {
        match self {
            Phase::Compute { .. } => Duration::ZERO,
            Phase::Communication { remote, .. } => *remote,
        }
    }
}

/// A request template submitted to a platform model.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Workload name (used to key per-function sandbox pools).
    pub name: String,
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
    /// Declared memory requirement in MiB (what a sandbox commits).
    pub memory_mib: u32,
    /// Total input + output bytes moved into and out of the sandbox.
    pub io_bytes: usize,
}

impl RequestSpec {
    /// Creates a single-phase compute request.
    pub fn compute_only(name: &str, work: Duration, memory_mib: u32) -> Self {
        Self {
            name: name.to_string(),
            phases: vec![Phase::Compute { work }],
            memory_mib,
            io_bytes: 4 * 1024,
        }
    }

    /// Total native compute time across phases.
    pub fn total_compute(&self) -> Duration {
        self.phases.iter().map(Phase::compute_time).sum()
    }

    /// Total remote latency across phases.
    pub fn total_remote(&self) -> Duration {
        self.phases.iter().map(Phase::remote_time).sum()
    }

    /// Number of compute phases (each is a separate sandbox in Dandelion).
    pub fn compute_phases(&self) -> usize {
        self.phases
            .iter()
            .filter(|phase| matches!(phase, Phase::Compute { .. }))
            .count()
    }

    /// Number of communication phases.
    pub fn communication_phases(&self) -> usize {
        self.phases.len() - self.compute_phases()
    }

    /// Declared memory requirement in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_mib as usize * MIB
    }
}

/// Workload presets calibrated to the paper's microbenchmarks and
/// applications.
pub mod workloads {
    use super::*;

    /// 1×1 int64 matrix multiplication: negligible compute, used to measure
    /// pure sandbox-creation cost (Table 1, Figure 5).
    pub fn matmul_1x1() -> RequestSpec {
        RequestSpec {
            name: "matmul-1x1".to_string(),
            phases: vec![Phase::Compute {
                work: Duration::from_micros(2),
            }],
            memory_mib: 16,
            io_bytes: 64,
        }
    }

    /// 128×128 int64 matrix multiplication (Figures 2 and 6). Roughly 2.6 ms
    /// of native compute on one Xeon E5-2630v3 core.
    pub fn matmul_128() -> RequestSpec {
        RequestSpec {
            name: "matmul-128".to_string(),
            phases: vec![Phase::Compute {
                work: Duration::from_micros(2600),
            }],
            memory_mib: 64,
            io_bytes: 3 * 128 * 128 * 8,
        }
    }

    /// One fetch-and-compute phase of the §7.4 composition microbenchmark:
    /// fetch a 64 KiB array from storage and compute sum/min/max over a
    /// sample of the elements.
    pub fn fetch_and_compute_phase() -> Vec<Phase> {
        vec![
            Phase::Communication {
                remote: Duration::from_millis(2),
                payload_bytes: 64 * 1024,
            },
            Phase::Compute {
                work: Duration::from_micros(120),
            },
        ]
    }

    /// The §7.4 / Figure 7 fetch-and-compute microbenchmark with the given
    /// number of phases.
    pub fn fetch_and_compute(phases: usize) -> RequestSpec {
        let mut all = Vec::with_capacity(phases * 2);
        for _ in 0..phases {
            all.extend(fetch_and_compute_phase());
        }
        RequestSpec {
            name: format!("fetch-and-compute-{phases}"),
            phases: all,
            memory_mib: 32,
            io_bytes: phases * 64 * 1024,
        }
    }

    /// The distributed log-processing application of Figure 3 / Figure 8:
    /// auth request, fan-out to five log services, HTML rendering.
    pub fn log_processing() -> RequestSpec {
        RequestSpec {
            name: "log-processing".to_string(),
            phases: vec![
                // Access: parse token, build auth request.
                Phase::Compute {
                    work: Duration::from_micros(150),
                },
                // Auth service round-trip.
                Phase::Communication {
                    remote: Duration::from_millis(4),
                    payload_bytes: 2 * 1024,
                },
                // FanOut: build the per-server log requests.
                Phase::Compute {
                    work: Duration::from_micros(200),
                },
                // Parallel log fetches: green threads overlap the five
                // requests, so the phase costs one (slowest) round trip.
                Phase::Communication {
                    remote: Duration::from_millis(18),
                    payload_bytes: 5 * 64 * 1024,
                },
                // Render: template the responses into HTML.
                Phase::Compute {
                    work: Duration::from_millis(4),
                },
            ],
            memory_mib: 64,
            io_bytes: 6 * 64 * 1024,
        }
    }

    /// The image-compression application of Figure 8: transform an 18 kB QOI
    /// image to PNG. Compute-intensive, roughly 15 ms of native CPU.
    pub fn image_compression() -> RequestSpec {
        RequestSpec {
            name: "image-compression".to_string(),
            phases: vec![
                Phase::Communication {
                    remote: Duration::from_millis(2),
                    payload_bytes: 18 * 1024,
                },
                Phase::Compute {
                    work: Duration::from_millis(15),
                },
                Phase::Communication {
                    remote: Duration::from_millis(2),
                    payload_bytes: 30 * 1024,
                },
            ],
            memory_mib: 128,
            io_bytes: 48 * 1024,
        }
    }

    /// A request spec matching one Azure-trace invocation: a single compute
    /// phase with the trace-provided duration and memory.
    pub fn trace_invocation(duration: Duration, memory_mib: u32) -> RequestSpec {
        RequestSpec {
            name: "trace-function".to_string(),
            phases: vec![Phase::Compute { work: duration }],
            memory_mib,
            io_bytes: 16 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accounting() {
        let spec = workloads::log_processing();
        assert_eq!(spec.compute_phases(), 3);
        assert_eq!(spec.communication_phases(), 2);
        assert!(spec.total_compute() > Duration::from_millis(4));
        assert!(spec.total_remote() >= Duration::from_millis(22));
        assert_eq!(spec.memory_bytes(), 64 * MIB);
    }

    #[test]
    fn matmul_presets_have_expected_shape() {
        assert!(workloads::matmul_1x1().total_compute() < Duration::from_micros(10));
        let big = workloads::matmul_128();
        assert_eq!(big.compute_phases(), 1);
        assert!(big.total_compute() >= Duration::from_millis(2));
    }

    #[test]
    fn fetch_and_compute_scales_with_phase_count() {
        let two = workloads::fetch_and_compute(2);
        let sixteen = workloads::fetch_and_compute(16);
        assert_eq!(two.compute_phases(), 2);
        assert_eq!(sixteen.compute_phases(), 16);
        assert!(sixteen.total_remote() > two.total_remote());
        assert_eq!(sixteen.phases.len(), 32);
    }

    #[test]
    fn image_compression_is_compute_dominated() {
        let spec = workloads::image_compression();
        assert!(spec.total_compute() > spec.total_remote());
    }

    #[test]
    fn trace_invocation_wraps_duration() {
        let spec = workloads::trace_invocation(Duration::from_millis(42), 256);
        assert_eq!(spec.total_compute(), Duration::from_millis(42));
        assert_eq!(spec.memory_mib, 256);
    }
}
