//! Core pools, warm-sandbox pools and the committed-memory tracker.

use std::collections::HashMap;
use std::time::Duration;

use dandelion_common::stats::TimeSeries;

/// A pool of identical CPU cores scheduling work FCFS.
///
/// Each core is represented by the time at which it next becomes free; an
/// arriving piece of work is assigned to the earliest-free core. This is an
/// exact model of an FCFS multi-server queue as long as work is submitted in
/// non-decreasing arrival order, which the load generators guarantee.
#[derive(Debug, Clone)]
pub struct CorePool {
    free_at: Vec<Duration>,
    /// Target size; shrinking is applied lazily when cores become free.
    target: usize,
    /// Start times of accepted-but-not-yet-started work, for queue-depth
    /// estimation (the PI controller's input signal).
    pending_starts: Vec<Duration>,
}

impl CorePool {
    /// Creates a pool with `cores` cores, all free at time zero.
    pub fn new(cores: usize) -> Self {
        Self {
            free_at: vec![Duration::ZERO; cores],
            target: cores,
            pending_starts: Vec::new(),
        }
    }

    /// The current number of cores (including ones pending removal).
    pub fn cores(&self) -> usize {
        self.free_at.len()
    }

    /// The target number of cores.
    pub fn target_cores(&self) -> usize {
        self.target
    }

    /// Requests the pool to grow or shrink to `target` cores.
    ///
    /// Growth takes effect immediately (the new core is free at `now`);
    /// shrinking removes the earliest-free cores lazily so in-flight work is
    /// never aborted.
    pub fn resize(&mut self, target: usize, now: Duration) {
        let target = target.max(1);
        self.target = target;
        while self.free_at.len() < target {
            self.free_at.push(now);
        }
        self.apply_shrink(now);
    }

    fn apply_shrink(&mut self, now: Duration) {
        while self.free_at.len() > self.target {
            // Remove an idle core if one exists; otherwise wait until one
            // frees up (checked again on the next acquire).
            if let Some(position) = self.free_at.iter().position(|free| *free <= now) {
                self.free_at.remove(position);
            } else {
                break;
            }
        }
    }

    /// Picks the core for work that becomes ready at `ready`: the core whose
    /// free time is closest below `ready` (best fit, wasting the least idle
    /// time), or the earliest-free core if all are still busy at `ready`.
    fn pick_core(&self, ready: Duration) -> usize {
        let best_idle = self
            .free_at
            .iter()
            .enumerate()
            .filter(|(_, free)| **free <= ready)
            .max_by_key(|(_, free)| **free)
            .map(|(index, _)| index);
        best_idle.unwrap_or_else(|| {
            self.free_at
                .iter()
                .enumerate()
                .min_by_key(|(_, free)| **free)
                .map(|(index, _)| index)
                .expect("a core pool always has at least one core")
        })
    }

    /// Schedules `service` on the earliest available core not before
    /// `ready`. Returns the `(start, finish)` times.
    pub fn acquire(&mut self, ready: Duration, service: Duration) -> (Duration, Duration) {
        self.apply_shrink(ready);
        let index = self.pick_core(ready);
        let start = self.free_at[index].max(ready);
        let finish = start + service;
        self.free_at[index] = finish;
        if start > ready {
            self.pending_starts.push(start);
        }
        (start, finish)
    }

    /// Claims the earliest-free core without fixing the service time yet.
    ///
    /// Returns the core index and the start time; the caller must later call
    /// [`CorePool::occupy_until`] with the computed finish time. Used by the
    /// D-hybrid model where a slot's occupancy depends on work scheduled on
    /// other pools.
    pub fn acquire_deferred(&mut self, ready: Duration) -> (usize, Duration) {
        self.apply_shrink(ready);
        let index = self.pick_core(ready);
        let start = self.free_at[index].max(ready);
        if start > ready {
            self.pending_starts.push(start);
        }
        (index, start)
    }

    /// Marks the core claimed by [`CorePool::acquire_deferred`] busy until
    /// `finish`.
    pub fn occupy_until(&mut self, index: usize, finish: Duration) {
        if let Some(slot) = self.free_at.get_mut(index) {
            *slot = (*slot).max(finish);
        }
    }

    /// Number of accepted requests that have not started executing yet at
    /// `now` — the queue depth the control plane samples.
    pub fn queue_depth(&mut self, now: Duration) -> usize {
        self.pending_starts.retain(|start| *start > now);
        self.pending_starts.len()
    }

    /// Number of cores busy at `now`.
    pub fn busy_cores(&self, now: Duration) -> usize {
        self.free_at.iter().filter(|free| **free > now).count()
    }
}

/// A per-function pool of warm sandboxes with keep-alive semantics.
///
/// Used by the MicroVM baselines: a warm sandbox serves a request without
/// paying the boot cost; sandboxes idle longer than the keep-alive window are
/// torn down (by [`WarmPool::expire`]), releasing their memory.
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    /// Per-function list of sandbox-free times and last-use timestamps.
    sandboxes: HashMap<String, Vec<Sandbox>>,
    keep_alive: Duration,
}

#[derive(Debug, Clone, Copy)]
struct Sandbox {
    free_at: Duration,
    last_used: Duration,
    memory_bytes: usize,
}

impl WarmPool {
    /// Creates a pool with the given keep-alive window.
    pub fn new(keep_alive: Duration) -> Self {
        Self {
            sandboxes: HashMap::new(),
            keep_alive,
        }
    }

    /// Tries to claim a warm sandbox for `function` that is free at `now`.
    /// Returns `true` when a warm sandbox was claimed (warm start).
    pub fn claim(&mut self, function: &str, now: Duration, busy_until: Duration) -> bool {
        let Some(pool) = self.sandboxes.get_mut(function) else {
            return false;
        };
        if let Some(sandbox) = pool.iter_mut().find(|sandbox| sandbox.free_at <= now) {
            sandbox.free_at = busy_until;
            sandbox.last_used = busy_until;
            true
        } else {
            false
        }
    }

    /// Registers a freshly booted sandbox that will be busy until
    /// `busy_until` and keeps it warm afterwards.
    pub fn add(&mut self, function: &str, busy_until: Duration, memory_bytes: usize) {
        self.sandboxes
            .entry(function.to_string())
            .or_default()
            .push(Sandbox {
                free_at: busy_until,
                last_used: busy_until,
                memory_bytes,
            });
    }

    /// Tears down sandboxes idle since before `now - keep_alive`, returning
    /// the number of bytes released.
    pub fn expire(&mut self, now: Duration) -> usize {
        let keep_alive = self.keep_alive;
        let mut released = 0usize;
        for pool in self.sandboxes.values_mut() {
            pool.retain(|sandbox| {
                let idle_expired = sandbox.free_at <= now && sandbox.last_used + keep_alive <= now;
                if idle_expired {
                    released += sandbox.memory_bytes;
                }
                !idle_expired
            });
        }
        released
    }

    /// Number of warm sandboxes currently provisioned for `function`.
    pub fn provisioned(&self, function: &str) -> usize {
        self.sandboxes.get(function).map(Vec::len).unwrap_or(0)
    }

    /// Total memory committed by all provisioned sandboxes.
    pub fn committed_bytes(&self) -> usize {
        self.sandboxes
            .values()
            .flatten()
            .map(|sandbox| sandbox.memory_bytes)
            .sum()
    }

    /// Removes sandboxes of `function` beyond `target` instances, preferring
    /// idle ones (used by the autoscaler to scale in).
    pub fn scale_to(&mut self, function: &str, target: usize, now: Duration) -> usize {
        let Some(pool) = self.sandboxes.get_mut(function) else {
            return 0;
        };
        let mut released = 0usize;
        while pool.len() > target {
            if let Some(position) = pool.iter().position(|sandbox| sandbox.free_at <= now) {
                released += pool[position].memory_bytes;
                pool.remove(position);
            } else {
                break;
            }
        }
        released
    }
}

/// Records committed-memory intervals and renders them as a time series.
///
/// Every sandbox/context contributes `[start, end) × bytes`; the tracker
/// integrates the overlapping intervals into a step function sampled at a
/// fixed period — this is what Figures 1 and 10 plot.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    intervals: Vec<(Duration, Duration, usize)>,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `bytes` were committed from `start` until `end`.
    pub fn record(&mut self, start: Duration, end: Duration, bytes: usize) {
        if end > start && bytes > 0 {
            self.intervals.push((start, end, bytes));
        }
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Builds the committed-memory time series over `[0, horizon]` sampled
    /// every `step`.
    pub fn timeline(&self, horizon: Duration, step: Duration) -> TimeSeries {
        let mut series = TimeSeries::new();
        if step.is_zero() {
            return series;
        }
        let samples = (horizon.as_secs_f64() / step.as_secs_f64()).ceil() as usize + 1;
        // Build a delta map: +bytes at start, -bytes at end, then integrate.
        let mut deltas: Vec<(Duration, i128)> = Vec::with_capacity(self.intervals.len() * 2);
        for (start, end, bytes) in &self.intervals {
            deltas.push((*start, *bytes as i128));
            deltas.push((*end, -(*bytes as i128)));
        }
        deltas.sort_by_key(|a| a.0);
        let mut cursor = 0usize;
        let mut current: i128 = 0;
        for sample in 0..samples {
            let at = step * sample as u32;
            while cursor < deltas.len() && deltas[cursor].0 <= at {
                current += deltas[cursor].1;
                cursor += 1;
            }
            series.push(at, current.max(0) as f64);
        }
        series
    }

    /// Time-averaged committed bytes over the horizon.
    pub fn average_bytes(&self, horizon: Duration) -> f64 {
        let total: f64 = self
            .intervals
            .iter()
            .map(|(start, end, bytes)| {
                let clipped_end = (*end).min(horizon);
                if clipped_end <= *start {
                    0.0
                } else {
                    (clipped_end - *start).as_secs_f64() * *bytes as f64
                }
            })
            .sum();
        if horizon.is_zero() {
            0.0
        } else {
            total / horizon.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(value: u64) -> Duration {
        Duration::from_millis(value)
    }

    #[test]
    fn core_pool_schedules_fcfs_across_cores() {
        let mut pool = CorePool::new(2);
        let (s1, f1) = pool.acquire(ms(0), ms(10));
        let (s2, f2) = pool.acquire(ms(0), ms(10));
        let (s3, f3) = pool.acquire(ms(0), ms(10));
        assert_eq!((s1, f1), (ms(0), ms(10)));
        assert_eq!((s2, f2), (ms(0), ms(10)));
        // Third request queues behind the first free core.
        assert_eq!((s3, f3), (ms(10), ms(20)));
        assert_eq!(pool.busy_cores(ms(5)), 2);
        assert_eq!(pool.queue_depth(ms(5)), 1);
        assert_eq!(pool.queue_depth(ms(15)), 0);
    }

    #[test]
    fn core_pool_resize_grows_and_shrinks_lazily() {
        let mut pool = CorePool::new(1);
        let (_, _) = pool.acquire(ms(0), ms(100));
        pool.resize(3, ms(0));
        assert_eq!(pool.cores(), 3);
        // Work lands on the new idle cores immediately.
        let (start, _) = pool.acquire(ms(1), ms(10));
        assert_eq!(start, ms(1));
        // Shrinking below the busy count happens once cores free up.
        pool.resize(1, ms(2));
        assert!(pool.cores() >= 1);
        let _ = pool.acquire(ms(200), ms(1));
        assert_eq!(pool.cores(), 1);
        // A pool never shrinks to zero.
        pool.resize(0, ms(300));
        assert_eq!(pool.target_cores(), 1);
    }

    #[test]
    fn warm_pool_claims_and_expires() {
        let mut pool = WarmPool::new(ms(100));
        assert!(!pool.claim("f", ms(0), ms(10)));
        pool.add("f", ms(10), 128);
        assert_eq!(pool.provisioned("f"), 1);
        // Busy until 10: cannot claim at 5, can claim at 12.
        assert!(!pool.claim("f", ms(5), ms(20)));
        assert!(pool.claim("f", ms(12), ms(30)));
        assert_eq!(pool.committed_bytes(), 128);
        // Not yet idle long enough to expire.
        assert_eq!(pool.expire(ms(50)), 0);
        // After 30 + 100 of idleness the sandbox is torn down.
        assert_eq!(pool.expire(ms(200)), 128);
        assert_eq!(pool.provisioned("f"), 0);
    }

    #[test]
    fn warm_pool_scale_to_releases_idle_sandboxes() {
        let mut pool = WarmPool::new(ms(1000));
        pool.add("f", ms(0), 100);
        pool.add("f", ms(0), 100);
        pool.add("f", ms(500), 100);
        // Two of the three sandboxes are idle at t=10; scaling to one removes
        // both idle ones and leaves the busy one in place.
        let released = pool.scale_to("f", 1, ms(10));
        assert_eq!(released, 200);
        assert_eq!(pool.provisioned("f"), 1);
        assert_eq!(pool.scale_to("missing", 0, ms(10)), 0);
    }

    #[test]
    fn memory_tracker_builds_step_timeline() {
        let mut tracker = MemoryTracker::new();
        tracker.record(ms(0), ms(100), 1000);
        tracker.record(ms(50), ms(150), 500);
        tracker.record(ms(10), ms(10), 999); // zero-length, ignored
        assert_eq!(tracker.len(), 2);
        let series = tracker.timeline(ms(200), ms(50));
        let values: Vec<f64> = series.points().iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1000.0, 1500.0, 500.0, 0.0, 0.0]);
        let average = tracker.average_bytes(ms(200));
        assert!((average - (1000.0 * 0.5 + 500.0 * 0.5)).abs() < 1e-6);
    }
}
