//! An Azure-Functions-like workload model.
//!
//! The paper's memory-elasticity experiments (Figures 1 and 10, §7.8) replay
//! a 100-function sample of the Azure Functions production trace
//! (Shahrad et al., ATC'20) selected with the InVitro sampler. The real trace
//! is not redistributable, so this crate generates a synthetic trace with the
//! published statistical properties instead (see `DESIGN.md` §1):
//!
//! * **heavy-tailed popularity** — a few functions receive most invocations
//!   while most functions are invoked rarely;
//! * **short executions** — "many FaaS functions execute for tens of
//!   milliseconds or less" (paper §2.3), modeled with a log-normal duration
//!   distribution per function;
//! * **small memory footprints** — a discrete distribution over the typical
//!   128–512 MB allocations;
//! * **bursty / periodic arrival patterns** with long idle periods, which is
//!   what makes keep-alive policies commit so much idle memory.
//!
//! The main entry points are [`sample_functions`] (the InVitro-style
//! sampler), [`generate_trace`], and [`Trace::arrivals_per_second`].

mod model;

pub use model::{
    generate_trace, sample_functions, ArrivalPattern, FunctionSpec, Trace, TraceConfig, TraceEvent,
};
