//! Function sampling, trace generation and replay.

use std::time::Duration;

use dandelion_common::rng::SplitMix64;

/// How a function's invocations arrive over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson arrivals at a constant average rate.
    Steady,
    /// Invocations only arrive during periodic on-windows (e.g. timers,
    /// cron-style triggers), with the given period and duty cycle.
    Periodic {
        /// Length of one on/off cycle.
        period: Duration,
        /// Fraction of the period during which invocations arrive (0..=1).
        duty: f64,
    },
    /// Mostly idle with occasional intense bursts.
    Bursty {
        /// Probability that any given second belongs to a burst.
        burst_probability: f64,
        /// Rate multiplier during a burst.
        burst_multiplier: f64,
    },
}

/// The static description of one function in the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Index of the function within the trace (0-based).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Average invocations per minute (over the whole trace).
    pub rate_per_minute: f64,
    /// Parameters (mu, sigma) of the log-normal execution-time distribution,
    /// in milliseconds.
    pub duration_lognormal_ms: (f64, f64),
    /// Declared memory requirement in MiB.
    pub memory_mib: u32,
    /// The arrival pattern.
    pub pattern: ArrivalPattern,
}

impl FunctionSpec {
    /// The median execution time implied by the log-normal parameters.
    pub fn median_duration(&self) -> Duration {
        Duration::from_secs_f64(self.duration_lognormal_ms.0.exp() / 1e3)
    }
}

/// One invocation in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time relative to the trace start.
    pub time: Duration,
    /// Index of the invoked function.
    pub function: usize,
    /// Execution time of this invocation (as it would run on a warm
    /// dedicated core).
    pub duration: Duration,
    /// Memory requirement in MiB.
    pub memory_mib: u32,
}

/// Configuration of the trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of functions to sample (the paper uses 100).
    pub functions: usize,
    /// Length of the generated trace (the paper replays ~20 minutes).
    pub duration: Duration,
    /// Seed for reproducibility.
    pub seed: u64,
    /// Scales every function's invocation rate (1.0 = as sampled).
    pub rate_scale: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            functions: 100,
            duration: Duration::from_secs(20 * 60),
            seed: 42,
            rate_scale: 1.0,
        }
    }
}

/// A generated trace: the sampled function population plus the sorted list of
/// invocation events.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The sampled functions.
    pub functions: Vec<FunctionSpec>,
    /// Invocation events sorted by arrival time.
    pub events: Vec<TraceEvent>,
    /// The configured trace length.
    pub duration: Duration,
}

impl Trace {
    /// Total number of invocations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace contains no invocations.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of arrivals in each one-second bucket.
    pub fn arrivals_per_second(&self) -> Vec<usize> {
        let seconds = self.duration.as_secs() as usize + 1;
        let mut buckets = vec![0usize; seconds];
        for event in &self.events {
            let bucket = (event.time.as_secs() as usize).min(seconds - 1);
            buckets[bucket] += 1;
        }
        buckets
    }

    /// Average request rate over the whole trace, in invocations per second.
    pub fn average_rps(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.events.len() as f64 / self.duration.as_secs_f64()
    }

    /// Events for one function, in arrival order.
    pub fn events_for(&self, function: usize) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|event| event.function == function)
            .collect()
    }
}

/// Memory sizes (MiB) typical of FaaS deployments, with selection weights.
const MEMORY_CHOICES: [(u32, f64); 5] =
    [(128, 0.45), (192, 0.2), (256, 0.2), (384, 0.1), (512, 0.05)];

/// Samples a population of functions with Azure-trace-like statistics
/// (InVitro-style sampling).
pub fn sample_functions(count: usize, seed: u64) -> Vec<FunctionSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut specs = Vec::with_capacity(count);
    let memory_weights: Vec<f64> = MEMORY_CHOICES.iter().map(|(_, weight)| *weight).collect();
    for id in 0..count {
        // Popularity: Pareto-distributed invocations per minute. Shape 1.2
        // gives the documented skew: most functions see about one invocation
        // per minute, a handful see hundreds.
        let rate_per_minute = rng.pareto(0.8, 1.2).min(600.0);
        // Durations: log-normal with a median drawn between ~15 ms and
        // ~500 ms, sigma between 0.3 and 0.8.
        let median_ms = rng.uniform(15.0, 500.0);
        let sigma = rng.uniform(0.3, 0.8);
        let duration_lognormal_ms = (median_ms.ln(), sigma);
        let memory_mib = MEMORY_CHOICES[rng.weighted_index(&memory_weights).unwrap_or(0)].0;
        let pattern = match rng.next_bounded(10) {
            0..=4 => ArrivalPattern::Steady,
            5..=7 => ArrivalPattern::Periodic {
                period: Duration::from_secs(60 * rng.next_bounded(5).max(1)),
                duty: rng.uniform(0.05, 0.4),
            },
            _ => ArrivalPattern::Bursty {
                burst_probability: rng.uniform(0.01, 0.08),
                burst_multiplier: rng.uniform(5.0, 20.0),
            },
        };
        specs.push(FunctionSpec {
            id,
            name: format!("function-{id:03}"),
            rate_per_minute,
            duration_lognormal_ms,
            memory_mib,
            pattern,
        });
    }
    specs
}

/// Generates a trace by sampling arrivals for each function independently.
pub fn generate_trace(config: &TraceConfig) -> Trace {
    let functions = sample_functions(config.functions, config.seed);
    let mut rng = SplitMix64::new(config.seed ^ 0x5EED_CAFE);
    let seconds = config.duration.as_secs();
    let mut events = Vec::new();
    for spec in &functions {
        let base_rate_per_second = spec.rate_per_minute * config.rate_scale / 60.0;
        for second in 0..seconds {
            let rate = match spec.pattern {
                ArrivalPattern::Steady => base_rate_per_second,
                ArrivalPattern::Periodic { period, duty } => {
                    let position =
                        (second % period.as_secs().max(1)) as f64 / period.as_secs().max(1) as f64;
                    if position < duty {
                        base_rate_per_second / duty.max(1e-6)
                    } else {
                        0.0
                    }
                }
                ArrivalPattern::Bursty {
                    burst_probability,
                    burst_multiplier,
                } => {
                    if rng.bernoulli(burst_probability) {
                        base_rate_per_second * burst_multiplier
                    } else {
                        base_rate_per_second * 0.2
                    }
                }
            };
            let arrivals = rng.poisson(rate);
            for _ in 0..arrivals {
                let offset = rng.next_f64();
                let (mu, sigma) = spec.duration_lognormal_ms;
                let duration_ms = rng.log_normal(mu, sigma).clamp(1.0, 120_000.0);
                events.push(TraceEvent {
                    time: Duration::from_secs_f64(second as f64 + offset),
                    function: spec.id,
                    duration: Duration::from_secs_f64(duration_ms / 1e3),
                    memory_mib: spec.memory_mib,
                });
            }
        }
    }
    events.sort_by_key(|a| a.time);
    Trace {
        functions,
        events,
        duration: config.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig {
            functions: 50,
            duration: Duration::from_secs(300),
            seed: 7,
            rate_scale: 1.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&small_config());
        let b = generate_trace(&small_config());
        assert_eq!(a.events, b.events);
        assert_eq!(a.functions, b.functions);
        let c = generate_trace(&TraceConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a.events.len(), 0);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn events_are_sorted_and_within_duration() {
        let trace = generate_trace(&small_config());
        assert!(!trace.is_empty());
        for window in trace.events.windows(2) {
            assert!(window[0].time <= window[1].time);
        }
        assert!(trace
            .events
            .iter()
            .all(|event| event.time <= trace.duration + Duration::from_secs(1)));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let trace = generate_trace(&TraceConfig {
            functions: 100,
            duration: Duration::from_secs(600),
            seed: 11,
            rate_scale: 1.0,
        });
        let mut per_function = vec![0usize; 100];
        for event in &trace.events {
            per_function[event.function] += 1;
        }
        per_function.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = per_function.iter().sum();
        let top_10: usize = per_function.iter().take(10).sum();
        // The 10 most popular functions should account for well over a third
        // of all invocations.
        assert!(
            top_10 as f64 / total as f64 > 0.35,
            "top-10 share was {}",
            top_10 as f64 / total as f64
        );
    }

    #[test]
    fn durations_are_mostly_sub_second() {
        let trace = generate_trace(&small_config());
        let sub_second = trace
            .events
            .iter()
            .filter(|event| event.duration < Duration::from_secs(1))
            .count();
        assert!(sub_second as f64 / trace.len() as f64 > 0.7);
        assert!(trace
            .events
            .iter()
            .all(|event| event.duration >= Duration::from_millis(1)));
    }

    #[test]
    fn memory_sizes_come_from_the_catalogue() {
        let specs = sample_functions(200, 3);
        assert!(specs.iter().all(|spec| MEMORY_CHOICES
            .iter()
            .any(|(size, _)| *size == spec.memory_mib)));
        // 128 MiB should be the most common choice.
        let small = specs.iter().filter(|spec| spec.memory_mib == 128).count();
        assert!(small > 50);
    }

    #[test]
    fn rate_scale_scales_the_trace() {
        let base = generate_trace(&small_config());
        let double = generate_trace(&TraceConfig {
            rate_scale: 2.0,
            ..small_config()
        });
        let ratio = double.len() as f64 / base.len() as f64;
        assert!((1.5..2.5).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn arrivals_per_second_matches_event_count() {
        let trace = generate_trace(&small_config());
        let buckets = trace.arrivals_per_second();
        assert_eq!(buckets.iter().sum::<usize>(), trace.len());
        assert!(trace.average_rps() > 0.0);
    }

    #[test]
    fn per_function_queries() {
        let trace = generate_trace(&small_config());
        let spec = &trace.functions[0];
        assert_eq!(spec.id, 0);
        assert!(spec.median_duration() >= Duration::from_millis(10));
        let events = trace.events_for(0);
        assert!(events.iter().all(|event| event.function == 0));
    }
}
