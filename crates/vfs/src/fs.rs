//! The in-memory filesystem tree.

use std::collections::BTreeMap;
use std::fmt;

use dandelion_common::{DataItem, DataSet, SharedBytes};

use crate::path::VfsPath;

/// Errors returned by virtual filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The path does not exist.
    NotFound(String),
    /// A file operation was attempted on a directory or vice versa.
    WrongNodeKind {
        /// The offending path.
        path: String,
        /// What the caller expected the node to be.
        expected: NodeKind,
    },
    /// A node already exists at the target path.
    AlreadyExists(String),
    /// The parent directory of the target path does not exist.
    MissingParent(String),
    /// Writing would exceed the filesystem's capacity budget.
    CapacityExceeded {
        /// The configured limit in bytes.
        limit: usize,
        /// The size the operation would have produced.
        requested: usize,
    },
    /// The operation is not valid on the root directory.
    RootOperation,
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(path) => write!(f, "no such file or directory: {path}"),
            VfsError::WrongNodeKind { path, expected } => {
                write!(f, "{path} is not a {expected}")
            }
            VfsError::AlreadyExists(path) => write!(f, "already exists: {path}"),
            VfsError::MissingParent(path) => write!(f, "missing parent directory for {path}"),
            VfsError::CapacityExceeded { limit, requested } => {
                write!(
                    f,
                    "capacity exceeded: {requested} bytes requested, limit {limit}"
                )
            }
            VfsError::RootOperation => write!(f, "operation not permitted on the root directory"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Whether a node is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Regular file holding bytes.
    File,
    /// Directory holding child nodes.
    Directory,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::File => f.write_str("file"),
            NodeKind::Directory => f.write_str("directory"),
        }
    }
}

/// Metadata describing one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// File or directory.
    pub kind: NodeKind,
    /// File size in bytes (0 for directories).
    pub size: usize,
    /// Grouping key attached to the file (carried into the output item).
    pub key: Option<String>,
}

#[derive(Debug, Clone)]
enum Node {
    File {
        /// File contents as a zero-copy view: input materialization and
        /// output harvest share buffers with the data plane instead of
        /// copying payloads in and out of the filesystem.
        data: SharedBytes,
        key: Option<String>,
    },
    Directory {
        children: BTreeMap<String, Node>,
    },
}

impl Node {
    fn new_dir() -> Node {
        Node::Directory {
            children: BTreeMap::new(),
        }
    }
}

/// An in-memory filesystem with a byte-capacity budget.
///
/// The capacity models the bounded memory context a function runs in: a
/// function cannot write more output than its context can hold.
#[derive(Debug, Clone)]
pub struct VirtualFs {
    root: Node,
    capacity: usize,
    used: usize,
}

impl Default for VirtualFs {
    fn default() -> Self {
        Self::new(usize::MAX)
    }
}

impl VirtualFs {
    /// Creates an empty filesystem with the given total byte capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            root: Node::new_dir(),
            capacity,
            used: 0,
        }
    }

    /// Creates a filesystem whose input-set directories are pre-populated.
    ///
    /// Every set becomes a directory named after the set; every item becomes
    /// a file named after the item, carrying the item's key.
    pub fn from_input_sets(sets: &[DataSet], capacity: usize) -> Result<Self, VfsError> {
        let mut fs = Self::new(capacity);
        for set in sets {
            let dir = VfsPath::new(&set.name);
            fs.create_dir_all(&dir)?;
            for item in &set.items {
                let path = dir.join(&item.name);
                // Zero-copy: the file references the input item's buffer.
                fs.write_file_shared(&path, item.data.clone())?;
                if let Some(key) = &item.key {
                    fs.set_key(&path, Some(key.clone()))?;
                }
            }
        }
        Ok(fs)
    }

    /// Total bytes currently stored in files.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn find(&self, path: &VfsPath) -> Option<&Node> {
        let mut node = &self.root;
        for component in path.components() {
            match node {
                Node::Directory { children } => node = children.get(component)?,
                Node::File { .. } => return None,
            }
        }
        Some(node)
    }

    fn find_mut(&mut self, path: &VfsPath) -> Option<&mut Node> {
        let mut node = &mut self.root;
        for component in path.components() {
            match node {
                Node::Directory { children } => node = children.get_mut(component)?,
                Node::File { .. } => return None,
            }
        }
        Some(node)
    }

    /// Returns `true` if a node exists at `path`.
    pub fn exists(&self, path: &VfsPath) -> bool {
        self.find(path).is_some()
    }

    /// Returns metadata for the node at `path`.
    pub fn metadata(&self, path: &VfsPath) -> Result<Metadata, VfsError> {
        match self.find(path) {
            None => Err(VfsError::NotFound(path.to_string())),
            Some(Node::File { data, key }) => Ok(Metadata {
                kind: NodeKind::File,
                size: data.len(),
                key: key.clone(),
            }),
            Some(Node::Directory { .. }) => Ok(Metadata {
                kind: NodeKind::Directory,
                size: 0,
                key: None,
            }),
        }
    }

    /// Creates a directory; the parent must already exist.
    pub fn create_dir(&mut self, path: &VfsPath) -> Result<(), VfsError> {
        if path.is_root() {
            return Err(VfsError::AlreadyExists("/".to_string()));
        }
        let parent = path.parent();
        let name = path.file_name().ok_or(VfsError::RootOperation)?.to_string();
        match self.find_mut(&parent) {
            Some(Node::Directory { children }) => {
                if children.contains_key(&name) {
                    return Err(VfsError::AlreadyExists(path.to_string()));
                }
                children.insert(name, Node::new_dir());
                Ok(())
            }
            Some(Node::File { .. }) => Err(VfsError::WrongNodeKind {
                path: parent.to_string(),
                expected: NodeKind::Directory,
            }),
            None => Err(VfsError::MissingParent(path.to_string())),
        }
    }

    /// Creates a directory and any missing ancestors.
    pub fn create_dir_all(&mut self, path: &VfsPath) -> Result<(), VfsError> {
        let mut current = VfsPath::root();
        for component in path.components() {
            current = current.join(component);
            match self.find(&current) {
                Some(Node::Directory { .. }) => {}
                Some(Node::File { .. }) => {
                    return Err(VfsError::WrongNodeKind {
                        path: current.to_string(),
                        expected: NodeKind::Directory,
                    })
                }
                None => self.create_dir(&current)?,
            }
        }
        Ok(())
    }

    /// Writes (creates or truncates) a file with the given contents,
    /// copying them into a fresh buffer. Use [`VirtualFs::write_file_shared`]
    /// to attach an existing buffer without copying.
    pub fn write_file(&mut self, path: &VfsPath, data: &[u8]) -> Result<(), VfsError> {
        self.write_file_shared(path, SharedBytes::copy_from_slice(data))
    }

    /// Writes (creates or truncates) a file backed by an existing
    /// [`SharedBytes`] view — the zero-copy path used when materializing
    /// input sets and when functions stage large outputs.
    pub fn write_file_shared(&mut self, path: &VfsPath, data: SharedBytes) -> Result<(), VfsError> {
        if path.is_root() {
            return Err(VfsError::RootOperation);
        }
        let existing = match self.find(path) {
            Some(Node::Directory { .. }) => {
                return Err(VfsError::WrongNodeKind {
                    path: path.to_string(),
                    expected: NodeKind::File,
                })
            }
            Some(Node::File { data, .. }) => data.len(),
            None => 0,
        };
        let new_used = self.used - existing + data.len();
        if new_used > self.capacity {
            return Err(VfsError::CapacityExceeded {
                limit: self.capacity,
                requested: new_used,
            });
        }
        let parent = path.parent();
        let name = path.file_name().ok_or(VfsError::RootOperation)?.to_string();
        match self.find_mut(&parent) {
            Some(Node::Directory { children }) => {
                match children.get_mut(&name) {
                    Some(Node::File { data: existing, .. }) => {
                        *existing = data;
                    }
                    Some(Node::Directory { .. }) => {
                        return Err(VfsError::WrongNodeKind {
                            path: path.to_string(),
                            expected: NodeKind::File,
                        })
                    }
                    None => {
                        children.insert(name, Node::File { data, key: None });
                    }
                }
                self.used = new_used;
                Ok(())
            }
            Some(Node::File { .. }) => Err(VfsError::WrongNodeKind {
                path: parent.to_string(),
                expected: NodeKind::Directory,
            }),
            None => Err(VfsError::MissingParent(path.to_string())),
        }
    }

    /// Appends bytes to a file, creating it if necessary.
    pub fn append_file(&mut self, path: &VfsPath, data: &[u8]) -> Result<(), VfsError> {
        let mut existing = match self.find(path) {
            Some(Node::File { data, .. }) => data.as_slice().to_vec(),
            Some(Node::Directory { .. }) => {
                return Err(VfsError::WrongNodeKind {
                    path: path.to_string(),
                    expected: NodeKind::File,
                })
            }
            None => Vec::new(),
        };
        existing.extend_from_slice(data);
        self.write_file_shared(path, SharedBytes::from_vec(existing))
    }

    /// Reads a file's contents into an owned vector (copies).
    pub fn read_file(&self, path: &VfsPath) -> Result<Vec<u8>, VfsError> {
        self.read_file_shared(path)
            .map(|data| data.as_slice().to_vec())
    }

    /// Reads a file's contents as a zero-copy view.
    pub fn read_file_shared(&self, path: &VfsPath) -> Result<SharedBytes, VfsError> {
        match self.find(path) {
            Some(Node::File { data, .. }) => Ok(data.clone()),
            Some(Node::Directory { .. }) => Err(VfsError::WrongNodeKind {
                path: path.to_string(),
                expected: NodeKind::File,
            }),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Reads a file as UTF-8 text, replacing invalid sequences.
    pub fn read_to_string(&self, path: &VfsPath) -> Result<String, VfsError> {
        self.read_file(path)
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Attaches or clears the grouping key of a file.
    pub fn set_key(&mut self, path: &VfsPath, key: Option<String>) -> Result<(), VfsError> {
        match self.find_mut(path) {
            Some(Node::File { key: slot, .. }) => {
                *slot = key;
                Ok(())
            }
            Some(Node::Directory { .. }) => Err(VfsError::WrongNodeKind {
                path: path.to_string(),
                expected: NodeKind::File,
            }),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Lists the names of a directory's children in sorted order.
    pub fn list_dir(&self, path: &VfsPath) -> Result<Vec<String>, VfsError> {
        match self.find(path) {
            Some(Node::Directory { children }) => Ok(children.keys().cloned().collect()),
            Some(Node::File { .. }) => Err(VfsError::WrongNodeKind {
                path: path.to_string(),
                expected: NodeKind::Directory,
            }),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    /// Removes a file or an empty directory.
    pub fn remove(&mut self, path: &VfsPath) -> Result<(), VfsError> {
        if path.is_root() {
            return Err(VfsError::RootOperation);
        }
        let parent = path.parent();
        let name = path.file_name().ok_or(VfsError::RootOperation)?.to_string();
        // Determine the freed size first to keep the accounting correct.
        let freed = match self.find(path) {
            Some(Node::File { data, .. }) => data.len(),
            Some(Node::Directory { children }) if children.is_empty() => 0,
            Some(Node::Directory { .. }) => {
                return Err(VfsError::WrongNodeKind {
                    path: path.to_string(),
                    expected: NodeKind::File,
                })
            }
            None => return Err(VfsError::NotFound(path.to_string())),
        };
        if let Some(Node::Directory { children }) = self.find_mut(&parent) {
            children.remove(&name);
            self.used -= freed;
            Ok(())
        } else {
            Err(VfsError::NotFound(path.to_string()))
        }
    }

    /// Collects the named output sets from their directories.
    ///
    /// Each existing directory contributes one [`DataSet`] with one item per
    /// file (sorted by file name). Missing directories produce empty sets so
    /// that downstream dependency tracking sees every declared set.
    pub fn harvest_output_sets(&self, set_names: &[String]) -> Vec<DataSet> {
        let mut sets = Vec::with_capacity(set_names.len());
        for name in set_names {
            let dir = VfsPath::new(name);
            let mut set = DataSet::new(name.clone());
            if let Some(Node::Directory { children }) = self.find(&dir) {
                for (file_name, node) in children {
                    if let Node::File { data, key } = node {
                        let mut item = DataItem::new(file_name.clone(), data.clone());
                        item.key = key.clone();
                        set.push(item);
                    }
                }
            }
            sets.push(set);
        }
        sets
    }

    /// Writes one output item in the two-level `/<set>/<item>` layout,
    /// creating the set directory if needed.
    pub fn write_output_item(
        &mut self,
        set: &str,
        item: &str,
        key: Option<&str>,
        data: &[u8],
    ) -> Result<(), VfsError> {
        let dir = VfsPath::new(set);
        self.create_dir_all(&dir)?;
        let path = dir.join(item);
        self.write_file(&path, data)?;
        self.set_key(&path, key.map(str::to_string))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets() -> Vec<DataSet> {
        vec![
            DataSet::with_items(
                "requests",
                vec![
                    DataItem::new("a.txt", b"alpha".to_vec()),
                    DataItem::with_key("b.txt", "west", b"beta".to_vec()),
                ],
            ),
            DataSet::new("empty"),
        ]
    }

    #[test]
    fn input_sets_become_directories() {
        let fs = VirtualFs::from_input_sets(&sample_sets(), 1024).unwrap();
        assert_eq!(
            fs.list_dir(&VfsPath::new("/requests")).unwrap(),
            vec!["a.txt", "b.txt"]
        );
        assert_eq!(
            fs.read_file(&VfsPath::new("/requests/a.txt")).unwrap(),
            b"alpha"
        );
        assert_eq!(
            fs.metadata(&VfsPath::new("/requests/b.txt")).unwrap().key,
            Some("west".to_string())
        );
        assert!(fs.list_dir(&VfsPath::new("/empty")).unwrap().is_empty());
        assert_eq!(fs.used_bytes(), 9);
    }

    #[test]
    fn write_read_append_remove_roundtrip() {
        let mut fs = VirtualFs::new(1024);
        fs.create_dir_all(&VfsPath::new("/out/nested")).unwrap();
        fs.write_file(&VfsPath::new("/out/nested/file"), b"12345")
            .unwrap();
        fs.append_file(&VfsPath::new("/out/nested/file"), b"678")
            .unwrap();
        assert_eq!(
            fs.read_to_string(&VfsPath::new("/out/nested/file"))
                .unwrap(),
            "12345678"
        );
        assert_eq!(fs.used_bytes(), 8);
        fs.remove(&VfsPath::new("/out/nested/file")).unwrap();
        assert_eq!(fs.used_bytes(), 0);
        assert!(!fs.exists(&VfsPath::new("/out/nested/file")));
        fs.remove(&VfsPath::new("/out/nested")).unwrap();
        assert!(!fs.exists(&VfsPath::new("/out/nested")));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut fs = VirtualFs::new(10);
        fs.create_dir(&VfsPath::new("/out")).unwrap();
        fs.write_file(&VfsPath::new("/out/a"), &[0u8; 8]).unwrap();
        let err = fs
            .write_file(&VfsPath::new("/out/b"), &[0u8; 4])
            .unwrap_err();
        assert!(matches!(err, VfsError::CapacityExceeded { limit: 10, .. }));
        // Overwriting with smaller content frees space.
        fs.write_file(&VfsPath::new("/out/a"), &[0u8; 2]).unwrap();
        fs.write_file(&VfsPath::new("/out/b"), &[0u8; 4]).unwrap();
        assert_eq!(fs.used_bytes(), 6);
    }

    #[test]
    fn wrong_node_kind_errors() {
        let mut fs = VirtualFs::new(1024);
        fs.create_dir(&VfsPath::new("/dir")).unwrap();
        fs.write_file(&VfsPath::new("/dir/file"), b"x").unwrap();
        assert!(matches!(
            fs.read_file(&VfsPath::new("/dir")),
            Err(VfsError::WrongNodeKind { .. })
        ));
        assert!(matches!(
            fs.list_dir(&VfsPath::new("/dir/file")),
            Err(VfsError::WrongNodeKind { .. })
        ));
        assert!(matches!(
            fs.create_dir(&VfsPath::new("/dir/file/sub")),
            Err(VfsError::WrongNodeKind { .. })
        ));
        assert!(matches!(
            fs.write_file(&VfsPath::new("/missing/file"), b"x"),
            Err(VfsError::MissingParent(_))
        ));
        assert!(matches!(
            fs.read_file(&VfsPath::new("/nope")),
            Err(VfsError::NotFound(_))
        ));
    }

    #[test]
    fn harvest_output_sets_collects_files_and_keys() {
        let mut fs = VirtualFs::new(1024);
        fs.write_output_item("results", "1.json", Some("eu"), b"{}")
            .unwrap();
        fs.write_output_item("results", "0.json", None, b"[]")
            .unwrap();
        let sets = fs.harvest_output_sets(&["results".to_string(), "missing".to_string()]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].name, "results");
        assert_eq!(sets[0].len(), 2);
        // Items are sorted by file name.
        assert_eq!(sets[0].items[0].name, "0.json");
        assert_eq!(sets[0].items[1].key.as_deref(), Some("eu"));
        assert!(sets[1].is_empty());
    }

    #[test]
    fn removing_root_or_nonempty_dir_fails() {
        let mut fs = VirtualFs::new(1024);
        fs.create_dir(&VfsPath::new("/d")).unwrap();
        fs.write_file(&VfsPath::new("/d/f"), b"1").unwrap();
        assert!(matches!(
            fs.remove(&VfsPath::root()),
            Err(VfsError::RootOperation)
        ));
        assert!(matches!(
            fs.remove(&VfsPath::new("/d")),
            Err(VfsError::WrongNodeKind { .. })
        ));
    }

    #[test]
    fn create_dir_all_is_idempotent() {
        let mut fs = VirtualFs::new(1024);
        fs.create_dir_all(&VfsPath::new("/a/b/c")).unwrap();
        fs.create_dir_all(&VfsPath::new("/a/b/c")).unwrap();
        assert!(fs.exists(&VfsPath::new("/a/b/c")));
        assert_eq!(
            fs.metadata(&VfsPath::new("/a/b")).unwrap().kind,
            NodeKind::Directory
        );
    }
}
