//! Cursor-style file handles layered on top of [`VirtualFs`].
//!
//! dlibc exposes `fopen`/`fread`/`fwrite`-style calls to user functions. The
//! [`FileHandle`] type provides the equivalent: a cursor over a file that
//! buffers writes and flushes them back into the filesystem on
//! [`FileHandle::flush_into`]. Handles own their buffer, so a function can
//! hold several open handles without aliasing the filesystem.

use crate::fs::{VfsError, VirtualFs};
use crate::path::VfsPath;

/// How a file is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; the file must exist.
    Read,
    /// Write; the file is created or truncated.
    Write,
    /// Append; the file is created if missing and the cursor starts at EOF.
    Append,
}

/// Where a seek is relative to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// Absolute offset from the start of the file.
    Start(usize),
    /// Offset relative to the current cursor (may be negative).
    Current(i64),
    /// Offset relative to the end of the file (may be negative).
    End(i64),
}

/// An open file cursor.
#[derive(Debug, Clone)]
pub struct FileHandle {
    path: VfsPath,
    buffer: Vec<u8>,
    position: usize,
    writable: bool,
    dirty: bool,
}

impl FileHandle {
    /// Opens `path` in the given mode.
    pub fn open(fs: &VirtualFs, path: &VfsPath, mode: OpenMode) -> Result<Self, VfsError> {
        let (buffer, position, writable) = match mode {
            OpenMode::Read => (fs.read_file(path)?, 0, false),
            OpenMode::Write => (Vec::new(), 0, true),
            OpenMode::Append => {
                let existing = if fs.exists(path) {
                    fs.read_file(path)?
                } else {
                    Vec::new()
                };
                let len = existing.len();
                (existing, len, true)
            }
        };
        Ok(Self {
            path: path.clone(),
            buffer,
            position,
            writable,
            dirty: matches!(mode, OpenMode::Write),
        })
    }

    /// The path this handle refers to.
    pub fn path(&self) -> &VfsPath {
        &self.path
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Current logical file length.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Returns `true` if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Reads up to `out.len()` bytes into `out`, returning the count read.
    pub fn read(&mut self, out: &mut [u8]) -> usize {
        let available = self.buffer.len().saturating_sub(self.position);
        let count = available.min(out.len());
        out[..count].copy_from_slice(&self.buffer[self.position..self.position + count]);
        self.position += count;
        count
    }

    /// Reads the remainder of the file from the cursor.
    pub fn read_to_end(&mut self) -> Vec<u8> {
        let rest = self.buffer[self.position..].to_vec();
        self.position = self.buffer.len();
        rest
    }

    /// Writes bytes at the cursor, growing the file as needed.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, VfsError> {
        if !self.writable {
            return Err(VfsError::WrongNodeKind {
                path: self.path.to_string(),
                expected: crate::fs::NodeKind::File,
            });
        }
        let end = self.position + data.len();
        if end > self.buffer.len() {
            self.buffer.resize(end, 0);
        }
        self.buffer[self.position..end].copy_from_slice(data);
        self.position = end;
        self.dirty = true;
        Ok(data.len())
    }

    /// Moves the cursor. Seeking past EOF clamps to EOF.
    pub fn seek(&mut self, from: SeekFrom) -> usize {
        let target: i64 = match from {
            SeekFrom::Start(offset) => offset as i64,
            SeekFrom::Current(delta) => self.position as i64 + delta,
            SeekFrom::End(delta) => self.buffer.len() as i64 + delta,
        };
        self.position = target.clamp(0, self.buffer.len() as i64) as usize;
        self.position
    }

    /// Flushes buffered writes back into the filesystem.
    ///
    /// Read-only handles are a no-op. Returns `true` if anything was written.
    pub fn flush_into(&mut self, fs: &mut VirtualFs) -> Result<bool, VfsError> {
        if !self.writable || !self.dirty {
            return Ok(false);
        }
        fs.create_dir_all(&self.path.parent())?;
        fs.write_file(&self.path, &self.buffer)?;
        self.dirty = false;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with_file() -> VirtualFs {
        let mut fs = VirtualFs::new(4096);
        fs.create_dir(&VfsPath::new("/in")).unwrap();
        fs.write_file(&VfsPath::new("/in/data"), b"hello world")
            .unwrap();
        fs
    }

    #[test]
    fn read_handle_reads_in_chunks() {
        let fs = fs_with_file();
        let mut handle = FileHandle::open(&fs, &VfsPath::new("/in/data"), OpenMode::Read).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(handle.read(&mut buf), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(handle.read_to_end(), b" world");
        assert_eq!(handle.read(&mut buf), 0);
    }

    #[test]
    fn read_handle_rejects_writes() {
        let fs = fs_with_file();
        let mut handle = FileHandle::open(&fs, &VfsPath::new("/in/data"), OpenMode::Read).unwrap();
        assert!(handle.write(b"nope").is_err());
    }

    #[test]
    fn write_handle_truncates_and_flushes() {
        let mut fs = fs_with_file();
        let mut handle = FileHandle::open(&fs, &VfsPath::new("/in/data"), OpenMode::Write).unwrap();
        assert_eq!(handle.len(), 0);
        handle.write(b"new contents").unwrap();
        assert!(handle.flush_into(&mut fs).unwrap());
        assert_eq!(
            fs.read_file(&VfsPath::new("/in/data")).unwrap(),
            b"new contents"
        );
        // Second flush with no new writes is a no-op.
        assert!(!handle.flush_into(&mut fs).unwrap());
    }

    #[test]
    fn append_handle_starts_at_eof() {
        let mut fs = fs_with_file();
        let mut handle =
            FileHandle::open(&fs, &VfsPath::new("/in/data"), OpenMode::Append).unwrap();
        assert_eq!(handle.position(), 11);
        handle.write(b"!").unwrap();
        handle.flush_into(&mut fs).unwrap();
        assert_eq!(
            fs.read_to_string(&VfsPath::new("/in/data")).unwrap(),
            "hello world!"
        );
    }

    #[test]
    fn seek_clamps_to_bounds() {
        let fs = fs_with_file();
        let mut handle = FileHandle::open(&fs, &VfsPath::new("/in/data"), OpenMode::Read).unwrap();
        assert_eq!(handle.seek(SeekFrom::End(-5)), 6);
        assert_eq!(String::from_utf8(handle.read_to_end()).unwrap(), "world");
        assert_eq!(handle.seek(SeekFrom::Start(1000)), 11);
        assert_eq!(handle.seek(SeekFrom::Current(-1000)), 0);
    }

    #[test]
    fn flush_creates_missing_parent_dirs() {
        let mut fs = VirtualFs::new(4096);
        let empty = VirtualFs::new(16);
        let mut handle =
            FileHandle::open(&empty, &VfsPath::new("/out/result"), OpenMode::Write).unwrap();
        handle.write(b"ok").unwrap();
        handle.flush_into(&mut fs).unwrap();
        assert_eq!(fs.read_file(&VfsPath::new("/out/result")).unwrap(), b"ok");
    }

    #[test]
    fn write_past_cursor_grows_file() {
        let fs = VirtualFs::new(4096);
        let mut handle = FileHandle::open(&fs, &VfsPath::new("/out/x"), OpenMode::Write).unwrap();
        handle.write(b"abcdef").unwrap();
        handle.seek(SeekFrom::Start(3));
        handle.write(b"XYZ123").unwrap();
        assert_eq!(handle.len(), 9);
        handle.seek(SeekFrom::Start(0));
        assert_eq!(handle.read_to_end(), b"abcXYZ123");
    }
}
