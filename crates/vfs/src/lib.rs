//! In-memory virtual filesystem used as the Dandelion compute-function ABI.
//!
//! Compute functions in Dandelion are *pure*: they may not issue system
//! calls. Instead of a POSIX filesystem, the platform materializes the
//! function's declared input sets as directories of an in-memory filesystem
//! before the function starts, and harvests the files the function wrote into
//! its output-set directories after it returns (paper §4.1, dlibc/dlibc++).
//!
//! The [`VirtualFs`] here plays the role of that dlibc-provided filesystem:
//!
//! * [`VirtualFs::from_input_sets`] lays out `/<set-name>/<item-name>` files
//!   for every input item.
//! * The function reads and writes through [`VirtualFs`] and [`FileHandle`]
//!   without any ambient authority.
//! * [`VirtualFs::harvest_output_sets`] turns the files under each declared
//!   output directory back into [`DataSet`]s for the dispatcher.
//!
//! The filesystem is intentionally small and strict: paths are normalized,
//! directories and files are distinct node types, and all failures are
//! reported as [`VfsError`] values rather than panics.

mod fs;
mod handle;
mod path;

pub use fs::{Metadata, NodeKind, VfsError, VirtualFs};
pub use handle::{FileHandle, OpenMode, SeekFrom};
pub use path::VfsPath;
