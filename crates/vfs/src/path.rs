//! Normalized path handling for the virtual filesystem.

use std::fmt;

/// A normalized, absolute path inside the virtual filesystem.
///
/// Paths are sequences of non-empty components separated by `/`. `.` and
/// empty components are dropped during normalization; `..` pops the previous
/// component but never escapes the root. The root path has zero components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VfsPath {
    components: Vec<String>,
}

impl VfsPath {
    /// The filesystem root (`/`).
    pub fn root() -> Self {
        Self {
            components: Vec::new(),
        }
    }

    /// Parses and normalizes a path string.
    pub fn new(path: &str) -> Self {
        let mut components: Vec<String> = Vec::new();
        for part in path.split('/') {
            match part {
                "" | "." => {}
                ".." => {
                    components.pop();
                }
                other => components.push(other.to_string()),
            }
        }
        Self { components }
    }

    /// Builds a path from set and item names (the common two-level layout).
    pub fn set_item(set: &str, item: &str) -> Self {
        Self::new(&format!("{set}/{item}"))
    }

    /// Returns the path's components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Returns `true` if this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// The last component (file or directory name), if any.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The parent path; the parent of the root is the root itself.
    pub fn parent(&self) -> VfsPath {
        let mut components = self.components.clone();
        components.pop();
        VfsPath { components }
    }

    /// Returns a new path with `component` appended.
    pub fn join(&self, component: &str) -> VfsPath {
        let mut joined = self.clone();
        for part in VfsPath::new(component).components {
            joined.components.push(part);
        }
        joined
    }

    /// Returns `true` if `self` is a prefix of `other` (or equal to it).
    pub fn is_ancestor_of(&self, other: &VfsPath) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }
}

impl fmt::Display for VfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for component in &self.components {
            write!(f, "/{component}")?;
        }
        Ok(())
    }
}

impl From<&str> for VfsPath {
    fn from(path: &str) -> Self {
        VfsPath::new(path)
    }
}

impl From<String> for VfsPath {
    fn from(path: String) -> Self {
        VfsPath::new(&path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_drops_empty_and_dot_components() {
        assert_eq!(VfsPath::new("/a//b/./c").to_string(), "/a/b/c");
        assert_eq!(VfsPath::new("a/b/c").to_string(), "/a/b/c");
        assert_eq!(VfsPath::new("").to_string(), "/");
        assert_eq!(VfsPath::new("/").to_string(), "/");
    }

    #[test]
    fn dotdot_never_escapes_root() {
        assert_eq!(VfsPath::new("/../../a").to_string(), "/a");
        assert_eq!(VfsPath::new("/a/b/../c").to_string(), "/a/c");
        assert_eq!(VfsPath::new("/a/..").to_string(), "/");
    }

    #[test]
    fn parent_and_file_name() {
        let path = VfsPath::new("/inputs/request.0");
        assert_eq!(path.file_name(), Some("request.0"));
        assert_eq!(path.parent().to_string(), "/inputs");
        assert_eq!(VfsPath::root().parent(), VfsPath::root());
        assert_eq!(VfsPath::root().file_name(), None);
    }

    #[test]
    fn join_and_ancestors() {
        let set = VfsPath::new("/outputs");
        let item = set.join("result.json");
        assert_eq!(item.to_string(), "/outputs/result.json");
        assert!(set.is_ancestor_of(&item));
        assert!(!item.is_ancestor_of(&set));
        assert!(VfsPath::root().is_ancestor_of(&item));
        let nested = set.join("a/b");
        assert_eq!(nested.depth(), 3);
    }

    #[test]
    fn set_item_helper() {
        assert_eq!(
            VfsPath::set_item("logs", "server-1.txt").to_string(),
            "/logs/server-1.txt"
        );
    }
}
