//! Azure-trace memory elasticity comparison (paper Figures 1 and 10).
//!
//! ```text
//! cargo run -p dandelion-examples --bin azure_trace --release
//! ```
//!
//! Generates an Azure-Functions-like trace, replays it against a Knative
//! autoscaled Firecracker deployment and against Dandelion (per-request
//! contexts), and prints the committed-memory comparison.

use std::time::Duration;

use dandelion_common::config::IsolationKind;
use dandelion_isolation::{HardwarePlatform, SandboxCostModel};
use dandelion_sim::autoscaler::KnativeAutoscaler;
use dandelion_sim::platforms::{
    DandelionConfig, DandelionSim, MicroVmKind, MicroVmSim, WarmPolicy,
};
use dandelion_sim::run_trace;
use dandelion_trace::{generate_trace, TraceConfig};

fn main() {
    let trace = generate_trace(&TraceConfig {
        functions: 100,
        duration: Duration::from_secs(600),
        seed: 42,
        rate_scale: 1.0,
    });
    println!(
        "trace: {} functions, {} invocations over {} s ({:.1} RPS average)",
        trace.functions.len(),
        trace.len(),
        trace.duration.as_secs(),
        trace.average_rps()
    );

    let mut firecracker = MicroVmSim::new(
        MicroVmKind::FirecrackerSnapshot,
        HardwarePlatform::X86Linux,
        16,
        WarmPolicy::Autoscaled {
            autoscaler: KnativeAutoscaler::knative_defaults(),
        },
        1,
    );
    let firecracker_result = run_trace(&mut firecracker, &trace);

    let mut dandelion = DandelionSim::new(DandelionConfig::xeon(SandboxCostModel::for_backend(
        IsolationKind::Process,
        HardwarePlatform::X86Linux,
    )));
    let dandelion_result = run_trace(&mut dandelion, &trace);

    let mib = 1024.0 * 1024.0;
    println!(
        "\n{:<34}{:>18}{:>14}",
        "metric", "FC + Knative", "Dandelion"
    );
    println!(
        "{:<34}{:>18.0}{:>14.0}",
        "average committed memory [MB]",
        firecracker_result.average_memory_bytes / mib,
        dandelion_result.average_memory_bytes / mib
    );
    println!(
        "{:<34}{:>18.0}{:>14.0}",
        "peak committed memory [MB]",
        firecracker_result.peak_memory_bytes / mib,
        dandelion_result.peak_memory_bytes / mib
    );
    println!(
        "{:<34}{:>18.1}{:>14.1}",
        "p99 latency [ms]",
        firecracker_result.latency.p99_ms(),
        dandelion_result.latency.p99_ms()
    );
    println!(
        "{:<34}{:>17.1}%{:>14}",
        "cold invocations",
        100.0 * firecracker_result.cold_starts as f64 / trace.len() as f64,
        "100%"
    );
    println!(
        "\nDandelion commits {:.0}% less memory on average (paper: 96%).",
        100.0
            * (1.0
                - dandelion_result.average_memory_bytes / firecracker_result.average_memory_bytes)
    );

    // A coarse committed-memory timeline (10 buckets) for both systems.
    println!("\ncommitted memory over time [MB]:");
    let buckets = 10;
    let fc = firecracker_result.memory_timeline.downsample(buckets);
    let dd = dandelion_result.memory_timeline.downsample(buckets);
    for (fc_point, dd_point) in fc.points().iter().zip(dd.points()) {
        println!(
            "  t={:>4.0}s  firecracker {:>8.0}  dandelion {:>8.0}",
            fc_point.0.as_secs_f64(),
            fc_point.1 / mib,
            dd_point.1 / mib
        );
    }
}
