//! Elastic SSB query processing (paper §7.7, Figure 9).
//!
//! ```text
//! cargo run -p dandelion-examples --bin elastic_query --release
//! ```
//!
//! The Star Schema Benchmark data lives in a simulated S3 bucket as CSV
//! partitions. The `SsbQuery` composition plans the fetches, pulls every
//! partition in parallel through the HTTP communication function, runs the
//! query over each partition in its own sandbox, and merges the partial
//! results. The example also prints the Athena-vs-EC2 cost model comparison
//! used by Figure 9.

use std::time::Instant;

use dandelion_apps::setup::demo_worker;
use dandelion_common::DataSet;
use dandelion_query::{generate_database, AthenaModel, Ec2Model, SsbQuery};

fn main() {
    let worker = demo_worker(8, false).expect("worker starts");

    // The demo environment uploads the fact table as 8 partitions. Submit
    // all four queries up front — the non-blocking API keeps them in flight
    // concurrently on the worker's engine pools — then collect the results.
    let started = Instant::now();
    let submissions: Vec<_> = [
        (SsbQuery::Q1_1, "1.1;8"),
        (SsbQuery::Q2_1, "2.1;8"),
        (SsbQuery::Q3_1, "3.1;8"),
        (SsbQuery::Q4_1, "4.1;8"),
    ]
    .into_iter()
    .map(|(query, spec)| {
        let handle = worker
            .submit(
                "SsbQuery",
                vec![DataSet::single("QuerySpec", spec.as_bytes().to_vec())],
            )
            .expect("query submits");
        (query, handle)
    })
    .collect();
    for (query, handle) in submissions {
        let outcome = handle.wait(None).expect("query runs");
        let csv = outcome.outputs[0].items[0].as_str().unwrap_or_default();
        println!(
            "{}: {} result rows ({} sandboxes, {} fetches)",
            query.label(),
            csv.lines().count().saturating_sub(1),
            outcome.report.compute_tasks,
            outcome.report.communication_tasks,
        );
    }
    println!(
        "all four queries pipelined in {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // Validate the distributed result against the single-node engine.
    let db = generate_database(0.05, 42);
    let expected = SsbQuery::Q1_1.run(&db).expect("engine runs");
    println!(
        "single-node engine agrees on Q1.1: revenue = {}",
        expected.int_column("revenue").unwrap()[0]
    );

    // Figure 9's cost comparison (models calibrated to AWS list prices).
    println!("\ncost model comparison for a ~700 MB query:");
    let athena = AthenaModel::default().query(700 * 1024 * 1024);
    let ec2 = Ec2Model::default();
    let latency = ec2.dandelion_latency(
        std::time::Duration::from_secs(40),
        32,
        std::time::Duration::from_millis(5),
        std::time::Duration::from_millis(900),
    );
    let dandelion = ec2.query(latency);
    println!(
        "  Athena:    {:>6.0} ms  {:.2} cents",
        athena.latency.as_secs_f64() * 1e3,
        athena.cost_cents
    );
    println!(
        "  Dandelion: {:>6.0} ms  {:.2} cents",
        dandelion.latency.as_secs_f64() * 1e3,
        dandelion.cost_cents
    );
    worker.shutdown();
}
