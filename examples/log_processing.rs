//! The distributed log-processing application of the paper (Figure 3).
//!
//! ```text
//! cargo run -p dandelion-examples --bin log_processing
//! ```
//!
//! The composition authenticates against an auth service, fans out to five
//! log services in parallel through the HTTP communication function, and
//! renders the responses into one HTML report. All remote services are
//! in-process simulations with realistic latency models.

use dandelion_apps::setup::{demo_worker, DEMO_TOKEN};
use dandelion_common::DataSet;
use dandelion_core::DandelionClient;

fn main() {
    let worker = demo_worker(8, true).expect("worker starts");
    let client = DandelionClient::for_worker(std::sync::Arc::clone(&worker));

    println!("compositions: {:?}", worker.registry().composition_names());

    let outcome = client
        .invoke_sync(
            "RenderLogs",
            vec![DataSet::single(
                "AccessToken",
                DEMO_TOKEN.as_bytes().to_vec(),
            )],
        )
        .expect("log processing runs");
    let html = outcome.outputs[0].items[0].as_str().unwrap_or_default();
    println!(
        "rendered {} bytes of HTML from {} log sections",
        html.len(),
        html.matches("<section>").count()
    );
    println!(
        "compute sandboxes created: {}, HTTP requests issued: {}",
        outcome.report.compute_tasks, outcome.report.communication_tasks
    );

    // An invalid token exercises the failure-handling path (§4.4): the
    // fan-out produces no requests and the report is empty rather than an
    // error.
    let denied = client
        .invoke_sync(
            "RenderLogs",
            vec![DataSet::single("AccessToken", b"wrong-token".to_vec())],
        )
        .expect("failure path completes");
    println!(
        "with an invalid token the composition returns {} output items (failure handled gracefully)",
        denied.outputs[0].len()
    );

    let stats = worker.stats();
    println!(
        "worker: {} invocations, p99 {:.1} ms",
        stats.invocations,
        stats.latency.p99_ms()
    );
    worker.shutdown();
}
