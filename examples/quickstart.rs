//! Quickstart: register a compute function and a composition, invoke it.
//!
//! ```text
//! cargo run -p dandelion-examples --bin quickstart
//! ```
//!
//! Shows the minimal end-to-end flow of the platform: start a worker node,
//! register an untrusted compute function, describe the application as a
//! composition in the DSL, and invoke it through the HTTP frontend exactly
//! like a client would.

use std::sync::Arc;

use dandelion_common::config::{IsolationKind, WorkerConfig};
use dandelion_core::{Frontend, WorkerNode};
use dandelion_http::HttpRequest;
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_services::ServiceRegistry;

const COMPOSITION: &str = r#"
composition WordCount(Document) => Counts {
    Count(Text = all Document) => (Counts = Result);
}
"#;

fn main() {
    // 1. Start a worker node. Four cores: three compute engines and one
    //    communication engine; the Native backend executes functions
    //    directly (swap in Cheri/Kvm/Process/Rwasm to model the paper's
    //    isolation mechanisms).
    let config = WorkerConfig {
        total_cores: 4,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start(config, ServiceRegistry::new()).expect("worker starts");

    // 2. Register an untrusted compute function. It only sees its declared
    //    inputs and outputs — no filesystem, no network, no syscalls.
    worker
        .register_function(FunctionArtifact::new(
            "Count",
            &["Result"],
            |ctx: &mut FunctionCtx| {
                let document = ctx.single_input("Text")?.clone();
                let text = document.as_str().unwrap_or_default();
                let words = text.split_whitespace().count();
                let lines = text.lines().count();
                ctx.push_output_bytes(
                    "Result",
                    "counts.txt",
                    format!("words={words} lines={lines}").into_bytes(),
                )
            },
        ))
        .expect("function registers");

    // 3. Register the application DAG written in the composition DSL.
    let name = worker
        .register_composition_dsl(COMPOSITION)
        .expect("composition registers");
    println!("registered composition `{name}`");

    // 4. Invoke it through the HTTP frontend, like an external client.
    let frontend = Frontend::new(Arc::clone(&worker));
    let request = HttpRequest::post(
        "http://worker.local/v1/invoke/WordCount",
        b"elasticity is the degree to which a system adapts\nto workload changes".to_vec(),
    );
    let response = frontend.handle(&request);
    println!("HTTP {} -> {}", response.status, response.body_text());

    // 5. Worker statistics: one invocation, one sandbox created.
    let stats = worker.stats();
    println!(
        "invocations={} sandboxes={} p50={:.2} ms",
        stats.invocations,
        stats.compute_tasks,
        stats.latency.p50_ms()
    );
    worker.shutdown();
}
