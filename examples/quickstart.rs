//! Quickstart: register a compute function and a composition, invoke it.
//!
//! ```text
//! cargo run -p dandelion-examples --bin quickstart
//! ```
//!
//! Shows the minimal end-to-end flow of the platform: start a worker node,
//! register an untrusted compute function, describe the application as a
//! composition in the DSL, and drive it through the `DandelionClient`
//! facade — both the non-blocking submit/poll path and the synchronous
//! convenience path — exactly like an external client would over the v1
//! JSON HTTP API.

use std::sync::Arc;

use dandelion_common::config::{IsolationKind, WorkerConfig};
use dandelion_common::DataSet;
use dandelion_core::{DandelionClient, Frontend, WorkerNode};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_services::ServiceRegistry;

const COMPOSITION: &str = r#"
composition WordCount(Document) => Counts {
    Count(Text = all Document) => (Counts = Result);
}
"#;

fn main() {
    // 1. Start a worker node. Four cores: three compute engines and one
    //    communication engine; the Native backend executes functions
    //    directly (swap in Cheri/Kvm/Process/Rwasm to model the paper's
    //    isolation mechanisms).
    let config = WorkerConfig {
        total_cores: 4,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start(config, ServiceRegistry::new()).expect("worker starts");

    // 2. Register an untrusted compute function. It only sees its declared
    //    inputs and outputs — no filesystem, no network, no syscalls.
    worker
        .register_function(FunctionArtifact::new(
            "Count",
            &["Result"],
            |ctx: &mut FunctionCtx| {
                let document = ctx.single_input("Text")?.clone();
                let text = document.as_str().unwrap_or_default();
                let words = text.split_whitespace().count();
                let lines = text.lines().count();
                ctx.push_output_bytes(
                    "Result",
                    "counts.txt",
                    format!("words={words} lines={lines}").into_bytes(),
                )
            },
        ))
        .expect("function registers");

    // 3. Register the application DAG written in the composition DSL.
    let name = worker
        .register_composition_dsl(COMPOSITION)
        .expect("composition registers");
    println!("registered composition `{name}`");

    // 4. Drive it through the client facade over the HTTP frontend. The
    //    submit call returns immediately with a handle; the worker executes
    //    in the background while the client is free to submit more work.
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let client = DandelionClient::for_frontend(Arc::clone(&frontend));
    let handle = client
        .submit(
            "WordCount",
            vec![DataSet::single(
                "Document",
                b"elasticity is the degree to which a system adapts\nto workload changes".to_vec(),
            )],
        )
        .expect("submission is accepted");
    println!(
        "submitted {} (status {})",
        handle.id(),
        handle.poll().unwrap().status
    );

    // 5. Collect the result: poll non-blockingly or wait with a timeout.
    let outcome = handle
        .wait(Some(std::time::Duration::from_secs(10)))
        .expect("invocation completes");
    println!(
        "result: {}",
        outcome.outputs[0].items[0].as_str().unwrap_or_default()
    );

    // The synchronous convenience path is one call.
    let sync = client
        .invoke_sync(
            "WordCount",
            vec![DataSet::single("Document", b"one two three".to_vec())],
        )
        .expect("sync invocation completes");
    println!(
        "sync result: {}",
        sync.outputs[0].items[0].as_str().unwrap_or_default()
    );

    // 6. Worker statistics: two invocations, two sandboxes created.
    let stats = worker.stats();
    println!(
        "invocations={} sandboxes={} p50={:.2} ms",
        stats.invocations,
        stats.compute_tasks,
        stats.latency.p50_ms()
    );
    worker.shutdown();
}
