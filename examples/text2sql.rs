//! The Text2SQL agentic AI workflow (paper §7.7).
//!
//! ```text
//! cargo run -p dandelion-examples --bin text2sql
//! ```
//!
//! Natural-language questions are parsed by a compute function, sent to a
//! (simulated) LLM inference service through the HTTP communication
//! function, the generated SQL is extracted and issued to a SQL database
//! service, and the rows are formatted into an answer. With
//! `--realistic-latency` the services use the paper's measured latencies
//! (the LLM call alone takes ~1.24 s and dominates the pipeline).

use std::time::Instant;

use dandelion_apps::setup::demo_worker;
use dandelion_apps::text2sql::paper_step_latencies_ms;
use dandelion_common::DataSet;
use dandelion_core::DandelionClient;

fn main() {
    let realistic = std::env::args().any(|arg| arg == "--realistic-latency");
    let worker = demo_worker(4, realistic).expect("worker starts");
    let client = DandelionClient::for_worker(std::sync::Arc::clone(&worker));

    // Submit every question at once through the client facade; with the
    // realistic latency model the three ~1.2 s LLM calls overlap instead of
    // serializing, so the batch finishes in roughly the time of one.
    let questions = [
        "Which city in Switzerland has the largest population?",
        "What is the best movie of 1994?",
        "List the movies directed in 2001",
    ];
    let started = Instant::now();
    let handles: Vec<_> = questions
        .iter()
        .map(|question| {
            client
                .submit(
                    "Text2Sql",
                    vec![DataSet::single("Prompt", question.as_bytes().to_vec())],
                )
                .expect("workflow submits")
        })
        .collect();
    for (question, handle) in questions.iter().zip(handles) {
        let outcome = handle.wait(None).expect("workflow runs");
        let answer = outcome.outputs[0].items[0].as_str().unwrap_or_default();
        println!("Q: {question}");
        for line in answer.lines() {
            println!("   A: {line}");
        }
    }
    println!(
        "({:.0} ms for all {} questions, overlapped)\n",
        started.elapsed().as_secs_f64() * 1e3,
        questions.len()
    );

    println!("paper per-step latencies (ms): ");
    for (step, latency) in paper_step_latencies_ms() {
        println!("  {step:>16}: {latency}");
    }
    if !realistic {
        println!("\nrun with --realistic-latency to apply the paper's measured service latencies");
    }
    worker.shutdown();
}
