//! Integration tests for the HTTP frontend and the multi-node cluster
//! manager, plus the control-plane behaviour under mixed load.

use std::sync::Arc;

use dandelion_common::config::{ClusterConfig, IsolationKind, LoadBalancing, WorkerConfig};
use dandelion_common::DataSet;
use dandelion_core::{ClusterManager, Frontend};
use dandelion_http::{HttpRequest, StatusCode};
use dandelion_integration_tests::demo_worker;

#[test]
fn frontend_serves_registration_and_invocation_over_http() {
    let worker = demo_worker();
    let frontend = Frontend::new(Arc::clone(&worker));

    // The demo applications are pre-registered and listed.
    let listing = frontend.handle(&HttpRequest::get("http://worker/v1/compositions"));
    assert_eq!(listing.status, StatusCode::OK);
    let body = listing.body_text();
    assert!(body.contains("RenderLogs"));
    assert!(body.contains("Text2Sql"));

    // Register an extra composition over HTTP and invoke it.
    let dsl = "composition Echo(In) => Out { MatMul(Matrices = all In) => (Out = Product); }";
    let registered = frontend.handle(&HttpRequest::post(
        "http://worker/v1/compositions",
        dsl.as_bytes().to_vec(),
    ));
    assert_eq!(registered.status, StatusCode::CREATED);

    // Invoke the log-processing composition through the frontend.
    let response = frontend.handle(&HttpRequest::post(
        "http://worker/v1/invoke/RenderLogs",
        dandelion_apps::setup::DEMO_TOKEN.as_bytes().to_vec(),
    ));
    assert_eq!(response.status, StatusCode::OK);
    assert!(response.body_text().contains("<html>"));

    // Stats endpoint reflects the invocation.
    let stats = frontend.handle(&HttpRequest::get("http://worker/v1/stats"));
    let stats_json = dandelion_common::JsonValue::parse(&stats.body_text()).unwrap();
    assert_eq!(
        stats_json
            .get("invocations")
            .and_then(dandelion_common::JsonValue::as_u64),
        Some(1)
    );
    worker.shutdown();
}

#[test]
fn cluster_manager_balances_across_nodes() {
    let config = ClusterConfig {
        nodes: 3,
        worker: WorkerConfig {
            total_cores: 2,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        load_balancing: LoadBalancing::RoundRobin,
    };
    let cluster =
        ClusterManager::start(config, dandelion_apps::setup::demo_services(false)).unwrap();
    cluster
        .register_function_with(dandelion_apps::matmul::matmul_artifact)
        .unwrap();
    cluster
        .register_composition(dandelion_apps::matmul::matmul_composition())
        .unwrap();

    for seed in 0..6 {
        let outcome = cluster
            .invoke(
                "MatMulApp",
                vec![dandelion_apps::matmul::matmul_inputs(8, seed)],
            )
            .unwrap();
        assert_eq!(outcome.outputs[0].len(), 1);
    }
    let stats = cluster.stats();
    assert_eq!(stats.len(), 3);
    assert!(stats.iter().all(|(_, s)| s.invocations == 2));
    cluster.shutdown();
}

#[test]
fn control_plane_rebalances_cores_under_io_heavy_load() {
    // Start a worker *with* the control plane enabled and drive it with the
    // I/O heavy log-processing workload; the PI controller may move cores
    // towards communication engines, and the allocation always stays within
    // the configured total.
    let config = WorkerConfig {
        total_cores: 6,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = dandelion_core::WorkerNode::start_with_control(
        config,
        dandelion_apps::setup::demo_services(false),
        true,
    )
    .unwrap();
    dandelion_apps::setup::register_applications(&worker).unwrap();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let worker = Arc::clone(&worker);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    worker
                        .invoke(
                            "RenderLogs",
                            vec![DataSet::single(
                                "AccessToken",
                                dandelion_apps::setup::DEMO_TOKEN.as_bytes().to_vec(),
                            )],
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for handle in workers {
        handle.join().unwrap();
    }
    let allocation = worker.core_allocation();
    assert_eq!(allocation.total(), 6);
    assert!(allocation.compute >= 1);
    assert!(allocation.communication >= 1);
    assert_eq!(worker.stats().invocations, 40);
    worker.shutdown();
}

#[test]
fn unknown_routes_and_payloads_are_rejected_cleanly() {
    let worker = demo_worker();
    let frontend = Frontend::new(Arc::clone(&worker));
    assert_eq!(
        frontend
            .handle(&HttpRequest::get("http://worker/v1/unknown"))
            .status,
        StatusCode::NOT_FOUND
    );
    assert_eq!(
        frontend
            .handle(&HttpRequest::post(
                "http://worker/v1/invoke/NoSuchApp",
                vec![]
            ))
            .status,
        StatusCode::NOT_FOUND
    );
    assert_eq!(
        frontend
            .handle(&HttpRequest::post(
                "http://worker/v1/compositions",
                b"composition Broken(".to_vec()
            ))
            .status,
        StatusCode::BAD_REQUEST
    );
    worker.shutdown();
}
