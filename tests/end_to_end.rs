//! End-to-end integration tests: every shipped application runs through the
//! real worker runtime (dispatcher, engines, isolation backends, simulated
//! remote services) and produces correct results.

use dandelion_apps::image::{png_dimensions, qoi_encode, Image};
use dandelion_apps::matmul::{decode_matrix, matmul_inputs};
use dandelion_apps::setup::DEMO_TOKEN;
use dandelion_common::config::IsolationKind;
use dandelion_common::DataSet;
use dandelion_integration_tests::demo_worker;
use dandelion_query::{generate_database, SsbQuery};

#[test]
fn log_processing_renders_all_authorized_services() {
    let worker = demo_worker();
    let outcome = worker
        .invoke(
            "RenderLogs",
            vec![DataSet::single(
                "AccessToken",
                DEMO_TOKEN.as_bytes().to_vec(),
            )],
        )
        .unwrap();
    let html = outcome.outputs[0].items[0].as_str().unwrap();
    assert_eq!(
        html.matches("<section><pre>").count(),
        dandelion_apps::setup::LOG_SERVICES
    );
    assert_eq!(
        outcome.report.communication_tasks,
        1 + dandelion_apps::setup::LOG_SERVICES
    );
    worker.shutdown();
}

#[test]
fn log_processing_with_bad_token_degrades_gracefully() {
    let worker = demo_worker();
    let outcome = worker
        .invoke(
            "RenderLogs",
            vec![DataSet::single("AccessToken", b"not-a-token".to_vec())],
        )
        .unwrap();
    // The fan-out produced no requests, so downstream nodes skipped and the
    // composition output is empty — not an error (paper §4.4).
    assert!(outcome.outputs[0].is_empty());
    worker.shutdown();
}

#[test]
fn matmul_application_is_correct_across_backends() {
    // The same composition gives identical results under every isolation
    // backend the worker can be configured with.
    let mut results = Vec::new();
    for isolation in [
        IsolationKind::Native,
        IsolationKind::Cheri,
        IsolationKind::Kvm,
    ] {
        let config = dandelion_common::config::WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation,
            ..Default::default()
        };
        let worker = dandelion_core::WorkerNode::start_with_control(
            config,
            dandelion_apps::setup::demo_services(false),
            false,
        )
        .unwrap();
        dandelion_apps::setup::register_applications(&worker).unwrap();
        let outcome = worker
            .invoke("MatMulApp", vec![matmul_inputs(32, 11)])
            .unwrap();
        let (dimension, product) = decode_matrix(&outcome.outputs[0].items[0].data).unwrap();
        assert_eq!(dimension, 32);
        results.push(product);
        worker.shutdown();
    }
    assert!(results.windows(2).all(|pair| pair[0] == pair[1]));
}

#[test]
fn image_compression_produces_a_valid_png() {
    let worker = demo_worker();
    let image = Image::synthetic(128, 96);
    let outcome = worker
        .invoke(
            "CompressImageApp",
            vec![DataSet::single("Qoi", qoi_encode(&image))],
        )
        .unwrap();
    let png = &outcome.outputs[0].items[0].data;
    assert_eq!(png_dimensions(png), Some((128, 96)));
    assert!(png.len() > 1024);
    worker.shutdown();
}

#[test]
fn text2sql_answers_city_and_movie_questions() {
    let worker = demo_worker();
    let city = worker
        .invoke(
            "Text2Sql",
            vec![DataSet::single(
                "Prompt",
                b"Which city in Switzerland has the largest population?".to_vec(),
            )],
        )
        .unwrap();
    assert!(city.outputs[0].items[0]
        .as_str()
        .unwrap()
        .contains("Zurich"));

    let movie = worker
        .invoke(
            "Text2Sql",
            vec![DataSet::single(
                "Prompt",
                b"What is the best movie?".to_vec(),
            )],
        )
        .unwrap();
    assert!(movie.outputs[0].items[0]
        .as_str()
        .unwrap()
        .contains("Shawshank"));
    worker.shutdown();
}

#[test]
fn distributed_ssb_queries_match_the_single_node_engine() {
    let worker = demo_worker();
    let db = generate_database(0.05, 42);
    for (query, spec) in [
        (SsbQuery::Q1_1, "1.1;8"),
        (SsbQuery::Q2_1, "2.1;8"),
        (SsbQuery::Q4_1, "4.1;8"),
    ] {
        let outcome = worker
            .invoke(
                "SsbQuery",
                vec![DataSet::single("QuerySpec", spec.as_bytes().to_vec())],
            )
            .unwrap();
        let csv = outcome.outputs[0].items[0].as_str().unwrap();
        let expected = query.run(&db).unwrap().to_csv();
        assert_eq!(csv, expected, "{} diverged", query.label());
    }
    worker.shutdown();
}

#[test]
fn fetch_and_compute_chains_scale_with_phase_count() {
    let worker = demo_worker();
    for (composition, phases) in [("FetchCompute2", 2usize), ("FetchCompute8", 8)] {
        let outcome = worker
            .invoke(composition, vec![DataSet::single("Phase0", b"1".to_vec())])
            .unwrap();
        assert!(outcome.outputs[0].items[0]
            .as_str()
            .unwrap()
            .contains("sum="));
        assert_eq!(outcome.report.compute_tasks, phases * 2 + 1);
        assert_eq!(outcome.report.communication_tasks, phases);
    }
    worker.shutdown();
}

#[test]
fn worker_statistics_reflect_the_executed_workload() {
    let worker = demo_worker();
    for _ in 0..3 {
        worker
            .invoke(
                "RenderLogs",
                vec![DataSet::single(
                    "AccessToken",
                    DEMO_TOKEN.as_bytes().to_vec(),
                )],
            )
            .unwrap();
    }
    let stats = worker.stats();
    assert_eq!(stats.invocations, 3);
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.compute_tasks, 9);
    assert!(stats.latency.p99_us >= stats.latency.p50_us);
    worker.shutdown();
}
