//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in the sibling files (`end_to_end.rs`,
//! `properties.rs`, `cluster_and_frontend.rs`); this library only hosts the
//! helpers they share.

use std::sync::Arc;

use dandelion_core::WorkerNode;

/// Starts the fully configured demo worker used by most integration tests
/// (all applications registered, zero-latency simulated services).
pub fn demo_worker() -> Arc<WorkerNode> {
    dandelion_apps::setup::demo_worker(4, false).expect("demo worker starts")
}

/// A writer modelling a non-blocking socket's send buffer: it accepts at
/// most `quota` bytes per readiness window, then reports `WouldBlock` once
/// (refilling the window) — the shape `RopeWriter` resumption is tested
/// against.
pub struct ChoppyWriter {
    /// Everything accepted so far, in order.
    pub out: Vec<u8>,
    quota: usize,
    left: usize,
}

impl ChoppyWriter {
    /// A writer accepting `quota` bytes per window.
    pub fn new(quota: usize) -> Self {
        Self {
            out: Vec::new(),
            quota,
            left: quota,
        }
    }
}

impl std::io::Write for ChoppyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.left == 0 {
            self.left = self.quota;
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let take = buf.len().min(self.left);
        self.left -= take;
        self.out.extend_from_slice(&buf[..take]);
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
