//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in the sibling files (`end_to_end.rs`,
//! `properties.rs`, `cluster_and_frontend.rs`); this library only hosts the
//! helpers they share.

use std::sync::Arc;

use dandelion_core::WorkerNode;

/// Starts the fully configured demo worker used by most integration tests
/// (all applications registered, zero-latency simulated services).
pub fn demo_worker() -> Arc<WorkerNode> {
    dandelion_apps::setup::demo_worker(4, false).expect("demo worker starts")
}
