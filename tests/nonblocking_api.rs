//! Integration tests for the non-blocking invocation API: the v1 JSON
//! submit/poll endpoints on a worker frontend, the `DandelionClient` facade
//! over a multi-node cluster, and byte-compatibility of the synchronous
//! `/v1/invoke/{name}` path with the async result encoding.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::config::{ClusterConfig, IsolationKind, LoadBalancing, WorkerConfig};
use dandelion_common::encoding::base64_decode;
use dandelion_common::{DataSet, JsonValue};
use dandelion_core::{ClusterManager, DandelionClient, Frontend, WorkerNode};
use dandelion_http::{HttpRequest, StatusCode};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_services::ServiceRegistry;

const SHOUT_DSL: &str =
    "composition Shout(Input) => Output { Upper(Text = all Input) => (Output = Out); }";

fn upper_artifact() -> FunctionArtifact {
    FunctionArtifact::new("Upper", &["Out"], |ctx: &mut FunctionCtx| {
        let text = ctx
            .single_input("Text")?
            .as_str()
            .unwrap_or("")
            .to_uppercase();
        ctx.push_output_bytes("Out", "upper", text.into_bytes())
    })
}

/// A 4-core worker with the `Shout` composition registered over HTTP.
fn four_core_frontend() -> Frontend {
    let config = WorkerConfig {
        total_cores: 4,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start(config, ServiceRegistry::new()).unwrap();
    worker.register_function(upper_artifact()).unwrap();
    let frontend = Frontend::new(worker);
    let registered = frontend.handle(&HttpRequest::post(
        "http://worker/v1/compositions",
        SHOUT_DSL.as_bytes().to_vec(),
    ));
    assert_eq!(registered.status, StatusCode::CREATED);
    frontend
}

fn json(body: &str) -> JsonValue {
    JsonValue::parse(body).expect("body is JSON")
}

fn first_output_base64(document: &JsonValue) -> Vec<u8> {
    let data = document
        .get("outputs")
        .and_then(|o| o.as_array())
        .and_then(|sets| sets.first())
        .and_then(|set| set.get("items"))
        .and_then(|items| items.as_array())
        .and_then(|items| items.first())
        .and_then(|item| item.get("data_base64"))
        .and_then(JsonValue::as_str)
        .expect("completed document carries one output item");
    base64_decode(data).expect("output payload is valid base64")
}

#[test]
fn concurrent_http_submissions_poll_to_completion_on_a_four_core_worker() {
    let frontend = four_core_frontend();
    let count = 10usize;

    // Submit every invocation before polling any of them, so all are in
    // flight concurrently on the worker.
    let ids: Vec<String> = (0..count)
        .map(|index| {
            let response = frontend.handle(&HttpRequest::post(
                "http://worker/v1/invocations/Shout",
                format!("payload number {index}").into_bytes(),
            ));
            assert_eq!(response.status, StatusCode::ACCEPTED);
            let document = json(&response.body_text());
            document
                .get("invocation_id")
                .and_then(JsonValue::as_str)
                .expect("202 body carries an invocation id")
                .to_string()
        })
        .collect();
    assert_eq!(ids.len(), count);

    // Poll each id until it completes; every invocation must produce its
    // own submitter's payload, uppercased.
    let deadline = Instant::now() + Duration::from_secs(30);
    for (index, id) in ids.iter().enumerate() {
        let document = loop {
            let response = frontend.handle(&HttpRequest::get(format!(
                "http://worker/v1/invocations/{id}"
            )));
            assert_eq!(response.status, StatusCode::OK);
            let document = json(&response.body_text());
            match document.get("status").and_then(JsonValue::as_str) {
                Some("completed") => break document,
                Some("queued" | "running") => {
                    assert!(Instant::now() < deadline, "invocation {id} did not settle");
                    std::thread::yield_now();
                }
                other => panic!("invocation {id} reached unexpected status {other:?}"),
            }
        };
        assert_eq!(
            first_output_base64(&document),
            format!("PAYLOAD NUMBER {index}").into_bytes()
        );
    }

    // The worker counted every invocation exactly once.
    let stats = frontend.handle(&HttpRequest::get("http://worker/v1/stats"));
    let stats = json(&stats.body_text());
    assert_eq!(
        stats.get("invocations").and_then(JsonValue::as_u64),
        Some(count as u64)
    );
    assert_eq!(stats.get("failures").and_then(JsonValue::as_u64), Some(0));
    frontend.worker().shutdown();
}

#[test]
fn sync_invoke_path_returns_identical_bytes_to_the_async_result() {
    let frontend = four_core_frontend();
    let input = b"the same bytes either way".to_vec();

    // Old synchronous path.
    let sync = frontend.handle(&HttpRequest::post(
        "http://worker/v1/invoke/Shout",
        input.clone(),
    ));
    assert_eq!(sync.status, StatusCode::OK);

    // New async path with the same input.
    let submitted = frontend.handle(&HttpRequest::post(
        "http://worker/v1/invocations/Shout",
        input,
    ));
    assert_eq!(submitted.status, StatusCode::ACCEPTED);
    let id = json(&submitted.body_text())
        .get("invocation_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    let document = loop {
        let response = frontend.handle(&HttpRequest::get(format!(
            "http://worker/v1/invocations/{id}"
        )));
        let document = json(&response.body_text());
        if document.get("status").and_then(JsonValue::as_str) == Some("completed") {
            break document;
        }
        assert!(Instant::now() < deadline);
        std::thread::yield_now();
    };

    assert_eq!(sync.body, first_output_base64(&document));
    frontend.worker().shutdown();
}

#[test]
fn client_facade_keeps_eight_invocations_in_flight_on_a_two_node_cluster() {
    let config = ClusterConfig {
        nodes: 2,
        worker: WorkerConfig {
            total_cores: 2,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        load_balancing: LoadBalancing::RoundRobin,
    };
    let cluster = Arc::new(ClusterManager::start(config, ServiceRegistry::new()).unwrap());
    cluster.register_function_with(upper_artifact).unwrap();
    cluster
        .register_composition(dandelion_dsl::compile(SHOUT_DSL).unwrap())
        .unwrap();
    let client = DandelionClient::for_cluster(Arc::clone(&cluster));

    // Submit 8 invocations up front; all are in flight before the first
    // wait, spread across both nodes by round robin.
    let handles: Vec<_> = (0..8)
        .map(|index| {
            let handle = client
                .submit(
                    "Shout",
                    vec![DataSet::single(
                        "Input",
                        format!("fan out {index}").into_bytes(),
                    )],
                )
                .expect("submission is accepted");
            (index, handle)
        })
        .collect();

    for (index, handle) in &handles {
        let outcome = handle.wait(Some(Duration::from_secs(30))).unwrap();
        assert_eq!(
            outcome.outputs[0].items[0].as_str(),
            Some(format!("FAN OUT {index}").as_str())
        );
    }

    // Both nodes did work and the totals add up.
    let stats = cluster.stats();
    assert_eq!(stats.len(), 2);
    let total: u64 = stats.iter().map(|(_, s)| s.invocations).sum();
    assert_eq!(total, 8);
    assert!(stats.iter().all(|(_, s)| s.invocations > 0));
    cluster.shutdown();
}

#[test]
fn client_facade_over_http_frontend_matches_cluster_semantics() {
    let frontend = Arc::new(four_core_frontend());
    let client = DandelionClient::for_frontend(Arc::clone(&frontend));
    let handles: Vec<_> = (0..8)
        .map(|index| {
            client
                .submit(
                    "Shout",
                    vec![DataSet::single(
                        "Input",
                        format!("http {index}").into_bytes(),
                    )],
                )
                .unwrap()
        })
        .collect();
    for (index, handle) in handles.iter().enumerate() {
        let poll_before = client.poll(handle.id()).unwrap();
        assert!(
            !poll_before.status.is_terminal() || poll_before.outcome.is_some(),
            "terminal polls carry outcomes"
        );
        let outcome = handle.wait(Some(Duration::from_secs(30))).unwrap();
        assert_eq!(
            outcome.outputs[0].items[0].as_str(),
            Some(format!("HTTP {index}").as_str())
        );
    }
    frontend.worker().shutdown();
}
