//! Property-style tests on the security- and correctness-critical
//! invariants: the untrusted output-descriptor parser, the HTTP request
//! validator, the composition DSL round-trip, the virtual filesystem's
//! capacity accounting and the query engine's partition-parallel execution.
//!
//! The workspace builds offline, so instead of `proptest` these tests drive
//! the same invariants with the repo's deterministic [`SplitMix64`] RNG:
//! every case is reproducible from the printed seed, and each test explores
//! a few hundred random cases per run.

use dandelion_common::rng::SplitMix64;
use dandelion_common::{DataItem, DataSet};
use dandelion_dsl::Distribution;
use dandelion_http::validate::{validate_request_bytes, ValidationPolicy};
use dandelion_isolation::output_parser::{encode_outputs, parse_outputs};
use dandelion_query::generate_database;
use dandelion_query::ssb::{run_partitioned, SsbQuery};
use dandelion_vfs::{VfsPath, VirtualFs};

const CASES: u64 = 300;

fn random_name(rng: &mut SplitMix64, alphabet: &[u8], max_len: u64) -> String {
    let len = 1 + rng.next_bounded(max_len);
    (0..len)
        .map(|_| alphabet[rng.next_bounded(alphabet.len() as u64) as usize] as char)
        .collect()
}

fn random_bytes(rng: &mut SplitMix64, max_len: u64) -> Vec<u8> {
    let len = rng.next_bounded(max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn arbitrary_item(rng: &mut SplitMix64) -> DataItem {
    const NAME: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    const KEY: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let mut item = DataItem::new(random_name(rng, NAME, 16), random_bytes(rng, 256));
    if rng.bernoulli(0.5) {
        item.key = Some(random_name(rng, KEY, 8));
    }
    item
}

fn arbitrary_sets(rng: &mut SplitMix64) -> Vec<DataSet> {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let set_count = rng.next_bounded(5);
    (0..set_count)
        .map(|_| {
            let mut name = random_name(rng, FIRST, 1);
            name.push_str(&random_name(
                rng,
                b"abcdefghijklmnopqrstuvwxyz0123456789_",
                12,
            ));
            let items = (0..rng.next_bounded(8))
                .map(|_| arbitrary_item(rng))
                .collect();
            DataSet::with_items(name, items)
        })
        .collect()
}

/// `SharedBytesMut::freeze` is the identity on the written bytes and never
/// copies: the frozen view's bytes live at the address the builder wrote
/// them to.
#[test]
fn builder_freeze_identity() {
    use dandelion_common::SharedBytesMut;
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let mut builder = SharedBytesMut::with_capacity(rng.next_bounded(512) as usize);
        let mut reference = Vec::new();
        for _ in 0..rng.next_bounded(16) {
            match rng.next_bounded(4) {
                0 => {
                    let chunk = random_bytes(&mut rng, 64);
                    builder.put_slice(&chunk);
                    reference.extend_from_slice(&chunk);
                }
                1 => {
                    let value = rng.next_u64() as u32;
                    builder.put_u32_le(value);
                    reference.extend_from_slice(&value.to_le_bytes());
                }
                2 => {
                    let value = rng.next_bounded(1_000_000) as usize;
                    builder.put_decimal(value);
                    reference.extend_from_slice(value.to_string().as_bytes());
                }
                _ => {
                    let byte = rng.next_u64() as u8;
                    builder.put_u8(byte);
                    reference.push(byte);
                }
            }
        }
        let written_ptr = builder.as_slice().as_ptr();
        let written_len = builder.len();
        let frozen = builder.freeze();
        assert_eq!(frozen.as_slice(), reference.as_slice(), "seed {seed}");
        if written_len > 0 {
            assert_eq!(
                frozen.as_slice().as_ptr(),
                written_ptr,
                "freeze must not copy (seed {seed})"
            );
        }
    }
}

/// A rope assembled from arbitrary segment splits of arbitrary payloads is
/// byte-identical to the concatenation, under flattening, vectored writes
/// and cross-chunk range reads alike.
#[test]
fn rope_reads_cross_chunk_boundaries() {
    use dandelion_common::{Rope, SharedBytes, SharedBytesMut};
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let mut rope = Rope::new();
        let mut reference = Vec::new();
        for _ in 0..rng.next_bounded(8) {
            let chunk = random_bytes(&mut rng, 128);
            reference.extend_from_slice(&chunk);
            if rng.bernoulli(0.3) {
                let mut builder = SharedBytesMut::with_capacity(chunk.len());
                builder.put_slice(&chunk);
                rope.push_builder(builder);
            } else if rng.bernoulli(0.5) && chunk.len() > 1 {
                // Adjacent split views of one buffer (exercises merging).
                let shared = SharedBytes::from_vec(chunk);
                let at = 1 + rng.next_bounded(shared.len() as u64 - 1) as usize;
                let (left, right) = shared.split_at(at);
                rope.push(left);
                rope.push(right);
            } else {
                rope.push(SharedBytes::from_vec(chunk));
            }
        }
        assert_eq!(rope.len(), reference.len(), "seed {seed}");
        assert_eq!(rope.to_vec(), reference, "flatten, seed {seed}");
        let mut delivered = Vec::new();
        rope.write_to(&mut delivered)
            .expect("Vec writes never fail");
        assert_eq!(delivered, reference, "vectored delivery, seed {seed}");
        // Random cross-chunk range reads.
        for _ in 0..8 {
            if reference.is_empty() {
                break;
            }
            let start = rng.next_bounded(reference.len() as u64) as usize;
            let len = rng.next_bounded((reference.len() - start) as u64 + 1) as usize;
            let mut window = vec![0u8; len];
            rope.copy_range_to(start, &mut window);
            assert_eq!(window, &reference[start..start + len], "seed {seed}");
        }
        let offset = if reference.is_empty() {
            0
        } else {
            rng.next_bounded(reference.len() as u64) as usize
        };
        assert_eq!(rope.byte_at(offset), reference.get(offset).copied());
        assert_eq!(rope.byte_at(reference.len()), None);
        // Collapsing preserves the bytes.
        assert_eq!(rope.into_shared().as_slice(), reference.as_slice());
    }
}

/// Hammering one pool from many threads never aliases two live buffers:
/// every thread stamps its acquired buffer with a pattern derived from the
/// handle's unique generation tag and must read it back intact, and no two
/// live handles ever observe the same generation.
#[test]
fn pool_recycling_never_aliases_buffers() {
    use std::collections::HashSet;
    use std::sync::{Arc, Mutex};

    use dandelion_common::BufferPool;

    let pool = Arc::new(BufferPool::new());
    let live_generations = Arc::new(Mutex::new(HashSet::new()));
    let threads: Vec<_> = (0..8)
        .map(|worker| {
            let pool = Arc::clone(&pool);
            let live_generations = Arc::clone(&live_generations);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xA11A5 + worker);
                for _ in 0..400 {
                    let capacity = 1 + rng.next_bounded(128 * 1024) as usize;
                    let mut buf = pool.acquire(capacity);
                    let generation = buf.generation();
                    assert!(
                        live_generations.lock().unwrap().insert(generation),
                        "two live handles share generation {generation}"
                    );
                    assert!(buf.is_empty(), "recycled buffers must arrive cleared");
                    // Stamp a generation-derived pattern across the buffer.
                    let fill = capacity.min(4096);
                    buf.extend((0..fill).map(|i| (generation as usize + i) as u8));
                    if rng.bernoulli(0.5) {
                        std::thread::yield_now();
                    }
                    // The pattern must survive other threads' pool traffic.
                    for (i, byte) in buf.iter().enumerate() {
                        assert_eq!(
                            *byte,
                            (generation as usize + i) as u8,
                            "buffer of generation {generation} was aliased"
                        );
                    }
                    assert!(live_generations.lock().unwrap().remove(&generation));
                    pool.recycle_vec(buf.detach());
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("no pool worker panics");
    }
    let stats = pool.stats();
    assert_eq!(stats.acquires, 8 * 400);
    assert!(
        stats.reuses > 0,
        "the stress test must actually exercise recycling, stats: {stats:?}"
    );
}

/// Encoding then parsing an output descriptor is the identity.
#[test]
fn output_descriptor_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let sets = arbitrary_sets(&mut rng);
        let encoded = encode_outputs(&sets);
        let decoded = parse_outputs(&encoded).expect("well-formed descriptors parse");
        assert_eq!(decoded, sets, "seed {seed}");
    }
}

/// The untrusted-output parser never panics, whatever bytes a malicious
/// function leaves in its context (paper §8 relies on this parser being
/// memory safe).
#[test]
fn output_parser_never_panics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x9E37 ^ seed);
        let bytes = random_bytes(&mut rng, 512);
        let _ = parse_outputs(&bytes);
    }
}

/// Corrupting any single byte of a valid descriptor either still parses
/// (the flip hit payload data) or fails cleanly — it never panics.
#[test]
fn output_parser_tolerates_bit_flips() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0xB1F ^ seed);
        let sets = arbitrary_sets(&mut rng);
        let mut encoded = encode_outputs(&sets);
        if encoded.is_empty() {
            continue;
        }
        let position = rng.next_bounded(encoded.len() as u64) as usize;
        let flip = 1 + rng.next_bounded(255) as u8;
        encoded[position] ^= flip;
        let _ = parse_outputs(&encoded);
    }
}

/// The HTTP validator never panics on arbitrary input and anything it
/// accepts re-parses as a whitelisted method with a syntactically valid
/// host. Half the cases are mutated from a valid request so the accept path
/// is actually exercised.
#[test]
fn http_validation_is_safe() {
    let policy = ValidationPolicy::default();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x477 ^ seed);
        let bytes = if rng.bernoulli(0.5) {
            random_bytes(&mut rng, 256)
        } else {
            let mut request =
                dandelion_http::HttpRequest::get("http://storage.internal/bucket/key").to_bytes();
            for _ in 0..rng.next_bounded(4) {
                let position = rng.next_bounded(request.len() as u64) as usize;
                request[position] = rng.next_u64() as u8;
            }
            request
        };
        if let Ok(validated) = validate_request_bytes(&bytes, &policy) {
            assert!(
                dandelion_http::Method::DEFAULT_WHITELIST.contains(&validated.request.method),
                "seed {seed}"
            );
            assert!(
                validated.uri.host_is_ipv4() || validated.uri.host_is_domain(),
                "seed {seed}"
            );
        }
    }
}

/// Compositions built programmatically print as DSL text that compiles
/// back to an equivalent executable graph.
#[test]
fn dsl_round_trips_linear_pipelines() {
    for stages in 1usize..6 {
        for each in [false, true] {
            let mut builder = dandelion_dsl::CompositionBuilder::new("Pipeline")
                .input("In")
                .output("Out");
            let mut previous = "In".to_string();
            for stage in 0..stages {
                let published = if stage + 1 == stages {
                    "Out".to_string()
                } else {
                    format!("Mid{stage}")
                };
                let source = previous.clone();
                let published_clone = published.clone();
                let distribution = if each {
                    Distribution::Each
                } else {
                    Distribution::All
                };
                builder = builder.node(&format!("Stage{stage}"), move |node| {
                    node.bind("data", distribution, &source)
                        .publish(&published_clone, "result")
                });
                previous = published;
            }
            let graph = builder.build().expect("pipeline is valid");
            let reparsed =
                dandelion_dsl::compile(&builder.ast().to_dsl()).expect("printed DSL compiles");
            assert_eq!(graph.nodes.len(), reparsed.nodes.len());
            assert_eq!(graph.topological_order, reparsed.topological_order);
        }
    }
}

/// The virtual filesystem's used-bytes accounting matches the sum of the
/// file sizes regardless of the write/overwrite/remove sequence.
#[test]
fn vfs_accounting_is_exact() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0xF5 ^ seed);
        let mut fs = VirtualFs::new(1 << 20);
        fs.create_dir(&VfsPath::new("/out")).unwrap();
        let mut expected: std::collections::HashMap<usize, usize> = Default::default();
        for _ in 0..(1 + rng.next_bounded(40)) {
            let op = rng.next_bounded(3);
            let slot = rng.next_bounded(6) as usize;
            let size = rng.next_bounded(512) as usize;
            let path = VfsPath::new(&format!("/out/file-{slot}"));
            match op {
                0 | 1 => {
                    fs.write_file(&path, &vec![0u8; size]).unwrap();
                    expected.insert(slot, size);
                }
                _ => {
                    if fs.exists(&path) {
                        fs.remove(&path).unwrap();
                        expected.remove(&slot);
                    }
                }
            }
        }
        assert_eq!(
            fs.used_bytes(),
            expected.values().sum::<usize>(),
            "seed {seed}"
        );
    }
}

/// Arbitrary chains of zero-copy `SharedBytes` slices always expose exactly
/// the bytes of the corresponding `Vec` range, never copy (every view
/// shares the root's buffer), and nested slicing composes like slice
/// indexing.
#[test]
fn shared_bytes_slices_view_the_original_buffer() {
    use dandelion_common::SharedBytes;
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x5B ^ seed);
        let data = random_bytes(&mut rng, 1024);
        let root = SharedBytes::from_vec(data.clone());
        let mut view = root.clone();
        let mut start = 0usize;
        for _ in 0..rng.next_bounded(6) {
            let len = view.len() as u64;
            let a = rng.next_bounded(len + 1) as usize;
            let b = rng.next_bounded(len + 1) as usize;
            let (low, high) = if a <= b { (a, b) } else { (b, a) };
            view = view.slice(low..high);
            start += low;
            assert_eq!(
                view.as_slice(),
                &data[start..start + view.len()],
                "seed {seed}"
            );
            assert_eq!(view.offset_in_buffer(), start, "seed {seed}");
            assert!(SharedBytes::same_buffer(&view, &root), "seed {seed}");
        }
    }
}

/// Splitting a view at any point and merging the halves back is the
/// identity, stays zero-copy, and merging is refused exactly when the
/// pieces are not adjacent views of one buffer.
#[test]
fn shared_bytes_split_merge_invariants() {
    use dandelion_common::SharedBytes;
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x3E8 ^ seed);
        let data = random_bytes(&mut rng, 512);
        let whole = SharedBytes::from_vec(data.clone());
        let at = rng.next_bounded(data.len() as u64 + 1) as usize;
        let (left, right) = whole.split_at(at);
        assert_eq!(left.len() + right.len(), data.len(), "seed {seed}");
        assert!(SharedBytes::same_buffer(&left, &right), "seed {seed}");

        let merged = left.try_merge(&right).expect("adjacent halves merge");
        assert_eq!(merged, whole, "seed {seed}");
        assert!(SharedBytes::same_buffer(&merged, &whole), "seed {seed}");

        // Reversed order only merges in the degenerate empty cases where
        // the halves are still adjacent (at == 0 or at == len).
        let reversed_adjacent = right.offset_in_buffer() + right.len() == left.offset_in_buffer();
        assert_eq!(
            right.try_merge(&left).is_some(),
            reversed_adjacent,
            "seed {seed} at {at}"
        );
        // Views of a different buffer never merge, even with equal content.
        // (Empty data is excluded: all empty views share one static buffer
        // by design, so two independently built empty views *do* merge.)
        if !data.is_empty() {
            let copy = SharedBytes::from_vec(data.clone());
            let (copy_left, _) = copy.split_at(at);
            assert!(copy_left.try_merge(&right).is_none(), "seed {seed}");
        }
        // A merge of non-adjacent views (gap of one byte) is refused.
        if data.len() >= 2 && at + 1 < data.len() {
            let gapped = whole.slice(at + 1..);
            assert!(left.try_merge(&gapped).is_none(), "seed {seed}");
        }
    }
}

/// Builds a random but well-formed HTTP request out of the characters the
/// strict parser accepts.
fn arbitrary_request(rng: &mut SplitMix64) -> dandelion_http::HttpRequest {
    use dandelion_http::{HttpRequest, Method};
    const PATH: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/_-.";
    const VALUE: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    let method = Method::DEFAULT_WHITELIST[rng.next_bounded(4) as usize];
    let mut request = HttpRequest::new(method, format!("/{}", random_name(rng, PATH, 24)));
    for index in 0..rng.next_bounded(5) {
        request = request.with_header(&format!("X-H{index}"), &random_name(rng, VALUE, 20));
    }
    if rng.bernoulli(0.7) {
        request.body = random_bytes(rng, 300).into();
    }
    request
}

/// The incremental stream decoder is split-invariant: feeding a serialized
/// request to `RequestDecoder` fragmented at *every* byte boundary (plus
/// SplitMix64-sampled three-way splits) yields a request byte-identical to
/// the one-shot `parse_request_shared` path.
#[test]
fn incremental_request_parsing_is_split_invariant() {
    use dandelion_common::SharedBytes;
    use dandelion_http::{parse_request_shared, ParseLimits, RequestDecoder};
    for seed in 0..100 {
        let mut rng = SplitMix64::new(0x11770 ^ seed);
        let request = arbitrary_request(&mut rng);
        let wire = request.to_bytes();
        let reference = parse_request_shared(&SharedBytes::from_vec(wire.clone()))
            .expect("serialized requests reparse");

        // Every two-fragment split.
        for cut in 0..=wire.len() {
            let mut decoder = RequestDecoder::new(ParseLimits::default());
            decoder.feed(&wire[..cut]);
            let early = decoder.next_request().expect("no spurious error");
            if let Some(parsed) = early {
                assert_eq!(cut, wire.len(), "seed {seed}: early completion at {cut}");
                assert_eq!(parsed, reference, "seed {seed}");
                continue;
            }
            decoder.feed(&wire[cut..]);
            let parsed = decoder
                .next_request()
                .expect("no error after completion")
                .expect("request completes once all bytes arrived");
            assert_eq!(
                parsed, reference,
                "seed {seed}: split at byte {cut} diverged"
            );
            assert_eq!(decoder.buffered(), 0, "seed {seed}");
        }

        // Sampled three-fragment splits.
        for _ in 0..16 {
            let mut cuts = [
                rng.next_bounded(wire.len() as u64 + 1) as usize,
                rng.next_bounded(wire.len() as u64 + 1) as usize,
            ];
            cuts.sort_unstable();
            let mut decoder = RequestDecoder::new(ParseLimits::default());
            let mut decoded = Vec::new();
            for fragment in [&wire[..cuts[0]], &wire[cuts[0]..cuts[1]], &wire[cuts[1]..]] {
                decoder.feed(fragment);
                while let Some(request) = decoder.next_request().expect("no spurious error") {
                    decoded.push(request);
                }
            }
            assert_eq!(decoded.len(), 1, "seed {seed}: cuts {cuts:?}");
            assert_eq!(decoded[0], reference, "seed {seed}: cuts {cuts:?} diverged");
        }
    }
}

/// Pipelined messages survive fragmentation too: several requests
/// concatenated on one "connection" and split at a SplitMix64-sampled
/// boundary decode to exactly the per-request one-shot results, in order.
#[test]
fn incremental_parsing_preserves_pipelined_request_order() {
    use dandelion_common::SharedBytes;
    use dandelion_http::{parse_request_shared, ParseLimits, RequestDecoder};
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x9199e ^ seed);
        let count = 1 + rng.next_bounded(3) as usize;
        let requests: Vec<_> = (0..count).map(|_| arbitrary_request(&mut rng)).collect();
        let references: Vec<_> = requests
            .iter()
            .map(|request| {
                parse_request_shared(&SharedBytes::from_vec(request.to_bytes())).unwrap()
            })
            .collect();
        let wire: Vec<u8> = requests
            .iter()
            .flat_map(|request| request.to_bytes())
            .collect();
        let cut = rng.next_bounded(wire.len() as u64 + 1) as usize;

        let mut decoder = RequestDecoder::new(ParseLimits::default());
        let mut decoded = Vec::new();
        for fragment in [&wire[..cut], &wire[cut..]] {
            decoder.feed(fragment);
            while let Some(request) = decoder.next_request().expect("valid pipeline") {
                decoded.push(request);
            }
        }
        assert_eq!(decoded, references, "seed {seed}: split at {cut}");
        assert_eq!(decoder.buffered(), 0, "seed {seed}");
    }
}

/// The resumable write path is suspension-invariant: every response of the
/// pipelined-order corpus, written through a `WouldBlock`-injecting writer
/// that accepts `k` bytes per readiness window — for *every* `k` — is
/// byte-identical to the one-shot `Rope::write_to`, and payload segments
/// keep their `Arc` identity across suspensions.
#[test]
fn resumed_partial_writes_are_byte_identical_for_every_chunk_size() {
    use dandelion_common::{RopeWriter, SharedBytes};
    use dandelion_http::HttpResponse;
    use dandelion_integration_tests::ChoppyWriter;
    use dandelion_server::response_rope;

    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(0x40b3_11fe ^ seed);
        // The pipelined-order corpus: several requests on one connection,
        // each answered by echoing its body — the response stream the
        // server would deliver, in order.
        let count = 1 + rng.next_bounded(3) as usize;
        let responses: Vec<_> = (0..count)
            .map(|index| {
                let request = arbitrary_request(&mut rng);
                let close = index + 1 == count && rng.bernoulli(0.5);
                let payload = request.body.clone();
                (
                    response_rope(HttpResponse::ok(request.body.clone()), close),
                    payload,
                )
            })
            .collect();
        for (rope, payload) in &responses {
            let mut reference = Vec::new();
            rope.write_to(&mut reference).unwrap();
            for quota in 1..=reference.len() {
                let mut writer = RopeWriter::new(rope.clone());
                let mut choppy = ChoppyWriter::new(quota);
                let mut windows = 0;
                while !writer.write_some(&mut choppy).unwrap() {
                    windows += 1;
                    assert!(
                        windows <= reference.len() + 2,
                        "seed {seed}: quota {quota} stalled"
                    );
                }
                assert_eq!(
                    choppy.out, reference,
                    "seed {seed}: quota {quota} diverged from one-shot write_to"
                );
                // Zero-copy across suspensions: the body segment still *is*
                // the original payload buffer.
                if !payload.is_empty() {
                    let last = writer
                        .rope()
                        .last_segment()
                        .expect("body rides as a segment");
                    assert!(
                        SharedBytes::same_buffer(last, payload),
                        "seed {seed}: quota {quota} copied the body"
                    );
                }
            }
        }
    }
}

/// Partition-parallel SSB execution is equivalent to single-node execution
/// for any partition count.
#[test]
fn partitioned_queries_are_deterministic() {
    for seed in 0u64..4 {
        let db = generate_database(0.02, seed);
        let whole = SsbQuery::Q1_1.run(&db).expect("query runs");
        for partitions in 1usize..12 {
            let split = run_partitioned(&db, SsbQuery::Q1_1, partitions).expect("partitioned runs");
            assert_eq!(whole, split, "seed {seed} partitions {partitions}");
        }
    }
}
