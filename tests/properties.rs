//! Property-based tests on the security- and correctness-critical
//! invariants: the untrusted output-descriptor parser, the HTTP request
//! validator, the composition DSL round-trip, the virtual filesystem's
//! capacity accounting and the query engine's partition-parallel execution.

use dandelion_common::{DataItem, DataSet};
use dandelion_dsl::Distribution;
use dandelion_http::validate::{validate_request_bytes, ValidationPolicy};
use dandelion_isolation::output_parser::{encode_outputs, parse_outputs};
use dandelion_query::ssb::{run_partitioned, SsbQuery};
use dandelion_query::generate_database;
use dandelion_vfs::{VfsPath, VirtualFs};
use proptest::prelude::*;

fn arbitrary_item() -> impl Strategy<Value = DataItem> {
    (
        "[a-zA-Z0-9._-]{1,16}",
        proptest::option::of("[a-z]{1,8}"),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(name, key, data)| {
            let mut item = DataItem::new(name, data);
            item.key = key;
            item
        })
}

fn arbitrary_sets() -> impl Strategy<Value = Vec<DataSet>> {
    proptest::collection::vec(
        ("[a-zA-Z][a-zA-Z0-9_]{0,12}", proptest::collection::vec(arbitrary_item(), 0..8)),
        0..5,
    )
    .prop_map(|sets| {
        sets.into_iter()
            .map(|(name, items)| DataSet::with_items(name, items))
            .collect()
    })
}

proptest! {
    /// Encoding then parsing an output descriptor is the identity.
    #[test]
    fn output_descriptor_roundtrip(sets in arbitrary_sets()) {
        let encoded = encode_outputs(&sets);
        let decoded = parse_outputs(&encoded).expect("well-formed descriptors parse");
        prop_assert_eq!(decoded, sets);
    }

    /// The untrusted-output parser never panics, whatever bytes a malicious
    /// function leaves in its context (paper §8 relies on this parser being
    /// memory safe).
    #[test]
    fn output_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_outputs(&bytes);
    }

    /// Corrupting any single byte of a valid descriptor either still parses
    /// (the flip hit payload data) or fails cleanly — it never panics.
    #[test]
    fn output_parser_tolerates_bit_flips(
        sets in arbitrary_sets(),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut encoded = encode_outputs(&sets);
        if !encoded.is_empty() {
            let position = index.index(encoded.len());
            encoded[position] ^= flip;
            let _ = parse_outputs(&encoded);
        }
    }

    /// The HTTP validator never panics on arbitrary input and anything it
    /// accepts re-parses as a whitelisted method with a syntactically valid
    /// host.
    #[test]
    fn http_validation_is_safe(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let policy = ValidationPolicy::default();
        if let Ok(validated) = validate_request_bytes(&bytes, &policy) {
            prop_assert!(dandelion_http::Method::DEFAULT_WHITELIST.contains(&validated.request.method));
            prop_assert!(validated.uri.host_is_ipv4() || validated.uri.host_is_domain());
        }
    }

    /// Compositions built programmatically print as DSL text that compiles
    /// back to an equivalent executable graph.
    #[test]
    fn dsl_round_trips_linear_pipelines(stages in 1usize..6, each in any::<bool>()) {
        let mut builder = dandelion_dsl::CompositionBuilder::new("Pipeline").input("In").output("Out");
        let mut previous = "In".to_string();
        for stage in 0..stages {
            let published = if stage + 1 == stages { "Out".to_string() } else { format!("Mid{stage}") };
            let source = previous.clone();
            let published_clone = published.clone();
            let distribution = if each { Distribution::Each } else { Distribution::All };
            builder = builder.node(&format!("Stage{stage}"), move |node| {
                node.bind("data", distribution, &source).publish(&published_clone, "result")
            });
            previous = published;
        }
        let graph = builder.build().expect("pipeline is valid");
        let reparsed = dandelion_dsl::compile(&builder.ast().to_dsl()).expect("printed DSL compiles");
        prop_assert_eq!(graph.nodes.len(), reparsed.nodes.len());
        prop_assert_eq!(graph.topological_order, reparsed.topological_order);
    }

    /// The virtual filesystem's used-bytes accounting matches the sum of the
    /// file sizes regardless of the write/overwrite/remove sequence.
    #[test]
    fn vfs_accounting_is_exact(operations in proptest::collection::vec((0u8..3, 0usize..6, 0usize..512), 1..40)) {
        let mut fs = VirtualFs::new(1 << 20);
        fs.create_dir(&VfsPath::new("/out")).unwrap();
        let mut expected: std::collections::HashMap<usize, usize> = Default::default();
        for (op, slot, size) in operations {
            let path = VfsPath::new(&format!("/out/file-{slot}"));
            match op {
                0 | 1 => {
                    fs.write_file(&path, &vec![0u8; size]).unwrap();
                    expected.insert(slot, size);
                }
                _ => {
                    if fs.exists(&path) {
                        fs.remove(&path).unwrap();
                        expected.remove(&slot);
                    }
                }
            }
        }
        prop_assert_eq!(fs.used_bytes(), expected.values().sum::<usize>());
    }

    /// Partition-parallel SSB execution is equivalent to single-node
    /// execution for any partition count.
    #[test]
    fn partitioned_queries_are_deterministic(partitions in 1usize..12, seed in 0u64..4) {
        let db = generate_database(0.02, seed);
        let whole = SsbQuery::Q1_1.run(&db).expect("query runs");
        let split = run_partitioned(&db, SsbQuery::Q1_1, partitions).expect("partitioned runs");
        prop_assert_eq!(whole, split);
    }
}
