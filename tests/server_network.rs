//! End-to-end tests of the network serving layer with real `TcpStream`
//! clients: the synchronous `/v1/invoke` path, the submit/poll
//! `/v1/invocations` flow, keep-alive pipelining, and the zero-copy
//! invariant that a function's output buffer reaches the socket write path
//! by `Arc` identity.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dandelion_common::config::{IsolationKind, WorkerConfig};
use dandelion_common::encoding::base64_decode;
use dandelion_common::{DataItem, JsonValue, SharedBytes};
use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_core::Frontend;
use dandelion_http::{HttpRequest, HttpResponse};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use dandelion_server::{response_rope, HttpClientConnection, Server, ServerConfig};

fn echo_worker() -> Arc<WorkerNode> {
    let config = WorkerConfig {
        total_cores: 4,
        initial_communication_cores: 1,
        isolation: IsolationKind::Native,
        ..WorkerConfig::default()
    };
    let worker = WorkerNode::start_with_control(config, default_test_services(), false).unwrap();
    worker
        .register_function(FunctionArtifact::new(
            "Echo",
            &["Out"],
            |ctx: &mut FunctionCtx| {
                // Pass the input through by reference: the output item is a
                // view of whatever buffer the input arrived in.
                let data = ctx.single_input("In")?.data.clone();
                ctx.push_output("Out", DataItem::new("echo", data))
            },
        ))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition EchoComp(Input) => Output { Echo(In = all Input) => (Output = Out); }",
        )
        .unwrap();
    worker
}

fn start_server() -> (Server, Arc<WorkerNode>) {
    let worker = echo_worker();
    let frontend = Arc::new(Frontend::new(Arc::clone(&worker)));
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            event_loops: 2,
            ..ServerConfig::default()
        },
        frontend,
    )
    .expect("server binds");
    (server, worker)
}

fn body_json(response: &HttpResponse) -> JsonValue {
    JsonValue::parse(&response.body_text()).expect("response body is JSON")
}

/// The synchronous invoke path over a real socket: request bytes in,
/// function output bytes back.
#[test]
fn sync_invoke_over_tcp() {
    let (server, worker) = start_server();
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    let response = client
        .request(
            &HttpRequest::post("/v1/invoke/EchoComp", b"network payload".to_vec())
                .with_header("Content-Type", "application/octet-stream"),
        )
        .unwrap();
    assert_eq!(response.status.0, 200);
    assert_eq!(response.body_text(), "network payload");
    assert_eq!(
        response.headers.get("content-type"),
        Some("application/octet-stream")
    );
    server.shutdown();
    worker.shutdown();
}

/// The non-blocking flow over one keep-alive connection: submit returns
/// `202` with an id, polling the returned href eventually yields the
/// completed status document with base64 outputs.
#[test]
fn submit_then_poll_over_tcp() {
    let (server, worker) = start_server();
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();

    let submitted = client
        .request(&HttpRequest::post(
            "/v1/invocations/EchoComp",
            b"poll me".to_vec(),
        ))
        .unwrap();
    assert_eq!(submitted.status.0, 202);
    let document = body_json(&submitted);
    let href = document
        .get("href")
        .and_then(JsonValue::as_str)
        .expect("202 body carries the poll href")
        .to_string();

    let deadline = Instant::now() + Duration::from_secs(10);
    let completed = loop {
        // Poll on the same connection (keep-alive carries the whole flow).
        let poll = client.request(&HttpRequest::get(href.clone())).unwrap();
        assert_eq!(poll.status.0, 200);
        let document = body_json(&poll);
        match document.get("status").and_then(JsonValue::as_str) {
            Some("completed") => break document,
            Some("failed") => panic!("invocation failed: {}", poll.body_text()),
            _ => assert!(Instant::now() < deadline, "invocation did not settle"),
        }
    };
    let data = completed
        .get("outputs")
        .and_then(|outputs| outputs.as_array())
        .and_then(|sets| sets[0].get("items"))
        .and_then(|items| items.as_array())
        .and_then(|items| items[0].get("data_base64"))
        .and_then(JsonValue::as_str)
        .expect("completed document carries outputs");
    assert_eq!(base64_decode(data).unwrap(), b"poll me");
    server.shutdown();
    worker.shutdown();
}

/// Two pipelined requests on one keep-alive connection: both are written
/// before either response is read, and the responses come back in order.
#[test]
fn pipelined_keep_alive_requests_on_one_connection() {
    let (server, worker) = start_server();
    let mut client =
        HttpClientConnection::connect(server.local_addr(), Duration::from_secs(10)).unwrap();
    client
        .send(&HttpRequest::post(
            "/v1/invoke/EchoComp",
            b"first in line".to_vec(),
        ))
        .unwrap();
    client
        .send(&HttpRequest::post(
            "/v1/invoke/EchoComp",
            b"second in line".to_vec(),
        ))
        .unwrap();
    let first = client.receive().unwrap();
    let second = client.receive().unwrap();
    assert_eq!(first.body_text(), "first in line");
    assert_eq!(second.body_text(), "second in line");
    assert_eq!(first.headers.get("connection"), Some("keep-alive"));
    // The connection is still usable afterwards.
    let health = client.request(&HttpRequest::get("/healthz")).unwrap();
    assert_eq!(health.body_text(), "ok");
    assert_eq!(server.stats().requests, 3);
    assert_eq!(server.stats().accepted, 1);
    server.shutdown();
    worker.shutdown();
}

/// The zero-copy write path: a function output crosses the frontend into
/// the HTTP response and onto the rope the connection handler hands to
/// `Rope::write_to` as the *same allocation* — no copy between context
/// export and the socket write.
#[test]
fn function_output_reaches_the_socket_write_path_by_arc_identity() {
    let worker = echo_worker();
    let frontend = Frontend::new(Arc::clone(&worker));

    // The client's payload arrives as a view of this buffer; the echo
    // passes it through, so the exported output shares it too.
    let payload = SharedBytes::from_vec(vec![0xC3; 512 * 1024]);
    let request = HttpRequest::post("/v1/invoke/EchoComp", payload.clone())
        .with_header("Content-Type", "application/octet-stream");
    let response = frontend.handle(&request);
    assert_eq!(response.status.0, 200);
    assert!(
        SharedBytes::same_buffer(&response.body, &payload),
        "the exported function output must still be the client's buffer"
    );

    // The connection handler's serialization step: the response becomes a
    // rope whose body segment is that same allocation...
    let rope = response_rope(response, false);
    let body_segment = rope.last_segment().expect("body rides as a segment");
    assert!(
        SharedBytes::same_buffer(body_segment, &payload),
        "the rope body segment must be the exported buffer, not a copy"
    );

    // ...and vectored delivery writes exactly the wire bytes.
    let mut delivered = Vec::new();
    rope.write_to(&mut delivered).unwrap();
    let text_head = String::from_utf8_lossy(&delivered[..64]);
    assert!(text_head.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(delivered.ends_with(payload.as_slice()));

    // The event-loop delivery path: the same rope through a RopeWriter that
    // suspends on WouldBlock mid-payload (the non-blocking socket model)
    // still shares the buffer after resumption and emits identical bytes.
    let mut writer = dandelion_common::RopeWriter::new(rope);
    let mut choppy = dandelion_integration_tests::ChoppyWriter::new(100 * 1024);
    let mut suspensions = 0;
    while !writer.write_some(&mut choppy).unwrap() {
        suspensions += 1;
    }
    assert!(
        suspensions >= 2,
        "the 512 KiB body must suspend mid-payload"
    );
    assert_eq!(choppy.out, delivered, "resumed delivery diverged");
    assert!(
        SharedBytes::same_buffer(
            writer.rope().last_segment().expect("body segment"),
            &payload
        ),
        "the body must still be the client's buffer after resumed partial writes"
    );
    worker.shutdown();
}
