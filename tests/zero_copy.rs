//! End-to-end proof that the data plane is zero-copy: payloads cross
//! composition edges, `each` fan-out, the client boundary and the external
//! outputs as views of the producer's buffer (`Arc`-identity, not just
//! equal bytes).

use std::sync::Arc;
use std::time::Duration;

use dandelion_common::config::{IsolationKind, WorkerConfig};
use dandelion_common::{DataItem, DataSet, SharedBytes};
use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use parking_lot::Mutex;

const PAYLOAD_BYTES: usize = 1024 * 1024;

fn worker() -> Arc<WorkerNode> {
    WorkerNode::start_with_control(
        WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        default_test_services(),
        false,
    )
    .expect("worker starts")
}

/// A relay that records the `SharedBytes` views it receives and passes the
/// items through by reference.
fn capturing_relay(name: &str, seen: Arc<Mutex<Vec<SharedBytes>>>) -> FunctionArtifact {
    FunctionArtifact::new(name, &["Out"], move |ctx: &mut FunctionCtx| {
        let items = ctx.input_set("Items").ok_or("missing Items")?.clone();
        for item in &items.items {
            seen.lock().push(item.data.clone());
            ctx.push_output("Out", item.clone())?;
        }
        Ok(())
    })
    .with_memory_requirement(64 * 1024 * 1024)
}

/// A client-provided input item reaches the function — through dispatch,
/// instance expansion and input materialization — as a view of the very
/// buffer the client allocated.
#[test]
fn client_input_reaches_the_function_without_copying() {
    let worker = worker();
    let seen = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&seen)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Identity(In) => Out { Relay(Items = all In) => (Out = Out); }",
        )
        .unwrap();

    let payload = SharedBytes::from_vec(vec![0xAB; PAYLOAD_BYTES]);
    let inputs = vec![DataSet::with_items(
        "In",
        vec![DataItem::new("blob", payload.clone())],
    )];
    let outcome = worker.invoke("Identity", inputs).unwrap();

    let seen = seen.lock();
    assert_eq!(seen.len(), 1);
    assert!(
        SharedBytes::same_buffer(&seen[0], &payload),
        "the function must receive the client's buffer, not a copy"
    );
    // The passthrough output is still the same allocation.
    assert!(SharedBytes::same_buffer(
        &outcome.outputs[0].items[0].data,
        &payload
    ));
    worker.shutdown();
}

/// A producer's staged outputs cross the composition edge into every
/// fan-out instance of the consumer — and on into the external outputs —
/// without any payload copy: all observed views share the producer's
/// allocations.
#[test]
fn composition_edges_share_the_producers_buffers() {
    let worker = worker();
    let produced = Arc::new(Mutex::new(Vec::new()));
    let produced_for_fn = Arc::clone(&produced);
    worker
        .register_function(
            FunctionArtifact::new("Produce", &["Out"], move |ctx: &mut FunctionCtx| {
                let count = ctx.single_input("Spec")?.as_str().unwrap_or("0").len();
                for index in 0..count {
                    let payload = SharedBytes::from_vec(vec![index as u8; PAYLOAD_BYTES]);
                    produced_for_fn.lock().push(payload.clone());
                    ctx.push_output("Out", DataItem::new(format!("p{index}"), payload))?;
                }
                Ok(())
            })
            .with_memory_requirement(64 * 1024 * 1024),
        )
        .unwrap();
    let relayed = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&relayed)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition FanOut(Spec) => Out { \
             Produce(Spec = all Spec) => (Stage = Out); \
             Relay(Items = each Stage) => (Out = Out); }",
        )
        .unwrap();

    // Three producer items fan out to three Relay instances.
    let outcome = worker
        .invoke("FanOut", vec![DataSet::single("Spec", b"xxx".to_vec())])
        .unwrap();

    let produced = produced.lock();
    let relayed = relayed.lock();
    assert_eq!(produced.len(), 3);
    assert_eq!(relayed.len(), 3);
    for received in relayed.iter() {
        assert!(
            produced
                .iter()
                .any(|staged| SharedBytes::same_buffer(staged, received)),
            "each fan-out instance must see one of the producer's buffers"
        );
    }
    // The external outputs are the same allocations the producer staged.
    assert_eq!(outcome.outputs[0].items.len(), 3);
    for item in &outcome.outputs[0].items {
        assert!(
            produced
                .iter()
                .any(|staged| SharedBytes::same_buffer(staged, &item.data)),
            "external outputs must reference the producer's buffers"
        );
    }
    worker.shutdown();
}

/// The non-blocking submit path preserves sharing too: a handle settled on
/// the driver thread still delivers the producer's buffer.
#[test]
fn submitted_invocations_preserve_sharing() {
    let worker = worker();
    let seen = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&seen)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Identity(In) => Out { Relay(Items = all In) => (Out = Out); }",
        )
        .unwrap();
    let payload = SharedBytes::from_vec(vec![0x5A; PAYLOAD_BYTES]);
    let handle = worker
        .submit(
            "Identity",
            vec![DataSet::with_items(
                "In",
                vec![DataItem::new("blob", payload.clone())],
            )],
        )
        .unwrap();
    let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
    assert!(SharedBytes::same_buffer(
        &outcome.outputs[0].items[0].data,
        &payload
    ));
    worker.shutdown();
}
