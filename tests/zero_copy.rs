//! End-to-end proof that the data plane is zero-copy: payloads cross
//! composition edges, `each` fan-out, the client boundary and the external
//! outputs as views of the producer's buffer (`Arc`-identity, not just
//! equal bytes).

use std::sync::Arc;
use std::time::Duration;

use dandelion_common::config::{IsolationKind, WorkerConfig};
use dandelion_common::{DataItem, DataSet, SharedBytes};
use dandelion_core::worker::{default_test_services, WorkerNode};
use dandelion_isolation::{FunctionArtifact, FunctionCtx};
use parking_lot::Mutex;

const PAYLOAD_BYTES: usize = 1024 * 1024;

fn worker() -> Arc<WorkerNode> {
    WorkerNode::start_with_control(
        WorkerConfig {
            total_cores: 4,
            initial_communication_cores: 1,
            isolation: IsolationKind::Native,
            ..WorkerConfig::default()
        },
        default_test_services(),
        false,
    )
    .expect("worker starts")
}

/// A relay that records the `SharedBytes` views it receives and passes the
/// items through by reference.
fn capturing_relay(name: &str, seen: Arc<Mutex<Vec<SharedBytes>>>) -> FunctionArtifact {
    FunctionArtifact::new(name, &["Out"], move |ctx: &mut FunctionCtx| {
        let items = ctx.input_set("Items").ok_or("missing Items")?.clone();
        for item in &items.items {
            seen.lock().push(item.data.clone());
            ctx.push_output("Out", item.clone())?;
        }
        Ok(())
    })
    .with_memory_requirement(64 * 1024 * 1024)
}

/// A client-provided input item reaches the function — through dispatch,
/// instance expansion and input materialization — as a view of the very
/// buffer the client allocated.
#[test]
fn client_input_reaches_the_function_without_copying() {
    let worker = worker();
    let seen = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&seen)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Identity(In) => Out { Relay(Items = all In) => (Out = Out); }",
        )
        .unwrap();

    let payload = SharedBytes::from_vec(vec![0xAB; PAYLOAD_BYTES]);
    let inputs = vec![DataSet::with_items(
        "In",
        vec![DataItem::new("blob", payload.clone())],
    )];
    let outcome = worker.invoke("Identity", inputs).unwrap();

    let seen = seen.lock();
    assert_eq!(seen.len(), 1);
    assert!(
        SharedBytes::same_buffer(&seen[0], &payload),
        "the function must receive the client's buffer, not a copy"
    );
    // The passthrough output is still the same allocation.
    assert!(SharedBytes::same_buffer(
        &outcome.outputs[0].items[0].data,
        &payload
    ));
    worker.shutdown();
}

/// A producer's staged outputs cross the composition edge into every
/// fan-out instance of the consumer — and on into the external outputs —
/// without any payload copy: all observed views share the producer's
/// allocations.
#[test]
fn composition_edges_share_the_producers_buffers() {
    let worker = worker();
    let produced = Arc::new(Mutex::new(Vec::new()));
    let produced_for_fn = Arc::clone(&produced);
    worker
        .register_function(
            FunctionArtifact::new("Produce", &["Out"], move |ctx: &mut FunctionCtx| {
                let count = ctx.single_input("Spec")?.as_str().unwrap_or("0").len();
                for index in 0..count {
                    let payload = SharedBytes::from_vec(vec![index as u8; PAYLOAD_BYTES]);
                    produced_for_fn.lock().push(payload.clone());
                    ctx.push_output("Out", DataItem::new(format!("p{index}"), payload))?;
                }
                Ok(())
            })
            .with_memory_requirement(64 * 1024 * 1024),
        )
        .unwrap();
    let relayed = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&relayed)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition FanOut(Spec) => Out { \
             Produce(Spec = all Spec) => (Stage = Out); \
             Relay(Items = each Stage) => (Out = Out); }",
        )
        .unwrap();

    // Three producer items fan out to three Relay instances.
    let outcome = worker
        .invoke("FanOut", vec![DataSet::single("Spec", b"xxx".to_vec())])
        .unwrap();

    let produced = produced.lock();
    let relayed = relayed.lock();
    assert_eq!(produced.len(), 3);
    assert_eq!(relayed.len(), 3);
    for received in relayed.iter() {
        assert!(
            produced
                .iter()
                .any(|staged| SharedBytes::same_buffer(staged, received)),
            "each fan-out instance must see one of the producer's buffers"
        );
    }
    // The external outputs are the same allocations the producer staged.
    assert_eq!(outcome.outputs[0].items.len(), 3);
    for item in &outcome.outputs[0].items {
        assert!(
            produced
                .iter()
                .any(|staged| SharedBytes::same_buffer(staged, &item.data)),
            "external outputs must reference the producer's buffers"
        );
    }
    worker.shutdown();
}

/// A payload assembled in a `SharedBytesMut` inside a function freezes into
/// the very allocation the builder wrote, and that allocation — not a copy —
/// is what crosses the output boundary into the invocation's external
/// outputs.
#[test]
fn builder_frozen_payloads_reach_outputs_without_copying() {
    use dandelion_common::SharedBytesMut;
    let worker = worker();
    let frozen = Arc::new(Mutex::new(Vec::new()));
    let frozen_for_fn = Arc::clone(&frozen);
    worker
        .register_function(
            FunctionArtifact::new("Assemble", &["Out"], move |ctx: &mut FunctionCtx| {
                let mut builder = SharedBytesMut::with_capacity(PAYLOAD_BYTES);
                builder.put_slice(&[0xC3; PAYLOAD_BYTES]);
                let written_ptr = builder.as_slice().as_ptr() as usize;
                let payload = builder.freeze();
                assert_eq!(
                    payload.as_slice().as_ptr() as usize,
                    written_ptr,
                    "freeze must reuse the builder's allocation"
                );
                frozen_for_fn.lock().push(payload.clone());
                ctx.push_output("Out", DataItem::new("built", payload))
            })
            .with_memory_requirement(64 * 1024 * 1024),
        )
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Build(In) => Out { Assemble(Items = all In) => (Out = Out); }",
        )
        .unwrap();
    let outcome = worker
        .invoke("Build", vec![DataSet::single("In", b"go".to_vec())])
        .unwrap();
    let frozen = frozen.lock();
    assert_eq!(frozen.len(), 1);
    assert!(
        SharedBytes::same_buffer(&outcome.outputs[0].items[0].data, &frozen[0]),
        "the frozen builder allocation must reach the external outputs"
    );
    worker.shutdown();
}

/// HTTP responses serialize as ropes whose body segment IS the handler's
/// buffer: proving the serialization boundary is zero-copy for payloads.
#[test]
fn http_rope_serialization_attaches_bodies_by_reference() {
    use dandelion_http::HttpResponse;
    let body = SharedBytes::from_vec(vec![0x77; PAYLOAD_BYTES]);
    let response = HttpResponse::ok(body.clone()).with_header("X-Path", "rope");
    let rope = response.to_rope();
    assert!(
        SharedBytes::same_buffer(rope.last_segment().expect("body segment"), &body),
        "the rope must reference the body buffer, not a copy"
    );
    // The descriptor rope shares payloads the same way.
    let sets = vec![DataSet::with_items(
        "Out",
        vec![DataItem::new("blob", body.clone())],
    )];
    let descriptor = dandelion_isolation::output_parser::encode_outputs_rope(&sets);
    assert!(
        descriptor
            .shared_segments()
            .any(|segment| SharedBytes::same_buffer(segment, &body)),
        "the descriptor rope must reference the item payload"
    );
}

/// Retained results that are tiny windows of huge buffers are compacted at
/// settle time (ROADMAP follow-up e): polling keeps working, but the big
/// producer buffer is no longer pinned. Whole-buffer outputs (the tests
/// above) keep full sharing.
#[test]
fn retained_slivers_do_not_pin_their_parent_buffers() {
    let worker = worker();
    worker
        .register_function(
            FunctionArtifact::new("Head16", &["Out"], |ctx: &mut FunctionCtx| {
                let data = ctx.single_input("Items")?.data.clone();
                ctx.push_output("Out", DataItem::new("head", data.slice(..16)))
            })
            .with_memory_requirement(64 * 1024 * 1024),
        )
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Head(In) => Out { Head16(Items = all In) => (Out = Out); }",
        )
        .unwrap();
    let payload = SharedBytes::from_vec(vec![0x42; PAYLOAD_BYTES]);
    let handle = worker
        .submit(
            "Head",
            vec![DataSet::with_items(
                "In",
                vec![DataItem::new("blob", payload.clone())],
            )],
        )
        .unwrap();
    let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
    let item = &outcome.outputs[0].items[0];
    assert_eq!(item.data.as_slice(), &[0x42; 16]);
    assert!(
        !SharedBytes::same_buffer(&item.data, &payload),
        "a 16-byte window must not retain the {PAYLOAD_BYTES}-byte input"
    );
    assert!(item.data.backing_len() <= 16);
    worker.shutdown();
}

/// The non-blocking submit path preserves sharing too: a handle settled on
/// the driver thread still delivers the producer's buffer.
#[test]
fn submitted_invocations_preserve_sharing() {
    let worker = worker();
    let seen = Arc::new(Mutex::new(Vec::new()));
    worker
        .register_function(capturing_relay("Relay", Arc::clone(&seen)))
        .unwrap();
    worker
        .register_composition_dsl(
            "composition Identity(In) => Out { Relay(Items = all In) => (Out = Out); }",
        )
        .unwrap();
    let payload = SharedBytes::from_vec(vec![0x5A; PAYLOAD_BYTES]);
    let handle = worker
        .submit(
            "Identity",
            vec![DataSet::with_items(
                "In",
                vec![DataItem::new("blob", payload.clone())],
            )],
        )
        .unwrap();
    let outcome = handle.wait(Some(Duration::from_secs(10))).unwrap();
    assert!(SharedBytes::same_buffer(
        &outcome.outputs[0].items[0].data,
        &payload
    ));
    worker.shutdown();
}
