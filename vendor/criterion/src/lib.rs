//! Vendored, dependency-free subset of the `criterion` bench harness.
//!
//! The workspace builds fully offline, so this crate provides the criterion
//! API surface the benches use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box`) with a
//! simple measurement loop: warm up for the configured time, then run
//! samples for the configured measurement time and report mean and best
//! iteration latency on stdout. No statistics, plots or baselines — the
//! numbers are indicative, the bench *names* and code paths are the contract.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under measurement; handed to every benchmark function.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    best_ns: f64,
    iterations: u64,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly and records its timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up time is spent (at least once).
        let warmup_end = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warmup_end {
                break;
            }
        }
        // Measurement: run batches until the measurement time is spent or
        // the sample count is reached, whichever comes last per batch.
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut best = Duration::MAX;
        while iterations < self.config.sample_size as u64
            || started.elapsed() < self.config.measurement_time
        {
            let iteration_start = Instant::now();
            black_box(routine());
            let elapsed = iteration_start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
            iterations += 1;
            if iterations >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iterations.max(1) as f64;
        self.best_ns = best.as_nanos() as f64;
        self.iterations = iterations;
    }
}

#[derive(Clone)]
struct Config {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

/// The bench context handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let config = self.config.clone();
        run_one("", id, &config, f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how long each benchmark is measured.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets how long each benchmark is warmed up.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warm_up_time = time;
        self
    }

    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), &self.config, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), &self.config, |bencher| {
            f(bencher, input)
        });
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(group: &str, id: &str, config: &Config, mut f: F) {
    let mut bencher = Bencher {
        config,
        mean_ns: 0.0,
        best_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    let full_name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {full_name:<50} mean {:>12}  best {:>12}  ({} iterations)",
        format_ns(bencher.mean_ns),
        format_ns(bencher.best_ns),
        bencher.iterations,
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let config = Config {
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
            sample_size: 3,
        };
        let mut bencher = Bencher {
            config: &config,
            mean_ns: 0.0,
            best_ns: 0.0,
            iterations: 0,
        };
        bencher.iter(|| std::hint::black_box(2u64.pow(10)));
        assert!(bencher.iterations >= 3);
        assert!(bencher.mean_ns >= 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("kvm").to_string(), "kvm");
    }
}
