//! MPMC channels with the `crossbeam_channel` API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel of bounded capacity.
///
/// Unlike the real crossbeam, `send` on a full bounded channel does not
/// block: the runtime only ever uses `try_send` for back-pressure, so a
/// blocking send would be dead code here. `send` enqueues unconditionally.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            capacity,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel; cheap to clone (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is bounded and full.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Enqueues a value, failing only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Returns `true` when both senders feed the same channel (mirrors the
    /// real crossbeam-channel API).
    pub fn same_channel(&self, other: &Sender<T>) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Enqueues a value unless the channel is full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(capacity) = state.capacity {
            if state.queue.len() >= capacity {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value is available or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until a value is available, the timeout elapses, or every
    /// sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(deadline) = deadline else {
                // Effectively infinite timeout.
                state = self
                    .shared
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            };
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Dequeues a value if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Returns `true` if no value is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_flow_in_fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        rx.recv().unwrap();
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn disconnects_are_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn multiple_consumers_share_the_queue() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.recv().unwrap())
            })
            .collect();
        for value in 0..4 {
            tx.send(value).unwrap();
        }
        let mut seen: Vec<i32> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
