//! Vendored, dependency-free subset of the `crossbeam` crate.
//!
//! The workspace builds fully offline, so instead of pulling the real
//! `crossbeam` from crates.io this crate re-implements the one piece the
//! runtime uses: multi-producer multi-consumer channels with the
//! `crossbeam_channel` API surface (`unbounded`, `bounded`, cloneable
//! `Sender`/`Receiver`, `try_send`, `recv_timeout`).
//!
//! The implementation is a `Mutex<VecDeque>` plus a condition variable. That
//! is slower than the real lock-free implementation under heavy contention,
//! but it is correct, small, and more than fast enough for the engine queues
//! (tasks are milliseconds of work; the queue hand-off is microseconds).

pub mod channel;
