//! Vendored, dependency-free subset of the `parking_lot` crate.
//!
//! The workspace builds fully offline, so this crate provides the
//! `parking_lot` API the runtime uses — `Mutex` and `RwLock` whose guards are
//! returned without a `Result` — implemented over the standard library
//! primitives. Poisoning is deliberately ignored: a panic while holding a
//! lock does not make the protected data unusable, matching `parking_lot`
//! semantics.

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion lock whose `lock` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires shared read access if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    /// Acquires exclusive write access if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`], ignoring poisoning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |taken| {
            self.inner
                .wait(taken)
                .unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses, whichever is first.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |taken| {
            let (taken, result) = self
                .inner
                .wait_timeout(taken, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            taken
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Runs `f` on the guard by value, as `std::sync::Condvar` requires, then
/// stores the returned guard back behind the `&mut` reference.
///
/// `MutexGuard` has no placeholder value to `mem::replace` with, so the
/// guard is moved out and back with raw reads. Sound only because every
/// caller's `f` is infallible: the std wait results are unwrapped with
/// `PoisonError::into_inner`, which never panics, so `f` always returns
/// a guard to write back.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let taken = std::ptr::read(guard);
        let returned = f(taken);
        std::ptr::write(guard, returned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_for_observes_notification_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, wake) = &*waiter;
            let mut ready = lock.lock();
            while !*ready {
                let result = wake.wait_for(&mut ready, std::time::Duration::from_secs(5));
                assert!(!result.timed_out());
            }
        });
        {
            let (lock, wake) = &*pair;
            *lock.lock() = true;
            wake.notify_all();
        }
        handle.join().unwrap();

        let (lock, wake) = &*pair;
        let mut ready = lock.lock();
        let result = wake.wait_for(&mut ready, std::time::Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn mutex_roundtrip() {
        let lock = Mutex::new(1);
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = Arc::new(RwLock::new(7));
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *lock.write() = 9;
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn try_variants_report_contention() {
        let lock = Mutex::new(0);
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }
}
